//===- runtime/Interpreter.cpp - Shadow-memory interpreter ------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "runtime/Interpreter.h"

#include "ir/IR.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>

using namespace usher;
using namespace usher::runtime;
using namespace usher::ir;
using core::InstrumentationPlan;
using core::ShadowOp;
using core::ShadowVal;

bool ExecutionReport::toolWarnedAt(const Instruction *I) const {
  for (const Warning &W : ToolWarnings)
    if (W.At == I)
      return true;
  return false;
}

namespace {

/// A runtime value: a 64-bit integer or a typed pointer (instance, field).
struct Value {
  int64_t Int = 0;
  bool IsPtr = false;
  uint32_t Inst = 0;
  uint32_t Field = 0;

  static Value integer(int64_t N) {
    Value V;
    V.Int = N;
    return V;
  }
  static Value pointer(uint32_t Inst, uint32_t Field) {
    Value V;
    V.IsPtr = true;
    V.Inst = Inst;
    V.Field = Field;
    return V;
  }
};

/// One concrete allocation of an abstract object.
struct Instance {
  const MemObject *Obj;
  std::vector<Value> Cells;
  /// Tool shadows, one plane per executing plan (plan-maintained).
  std::vector<std::vector<uint8_t>> Shadow;
  std::vector<uint8_t> Oracle; ///< Ground-truth definedness.
};

/// One activation record.
struct Frame {
  const Function *Fn = nullptr;
  uint32_t Block = 0;
  uint32_t Index = 0;
  bool ResumeAfterCall = false;
  std::vector<Value> Vars;
  /// Variable shadows, one plane per executing plan.
  std::vector<std::vector<uint8_t>> Shadow;
  std::vector<uint8_t> Oracle;
};

} // namespace

class Interpreter::Impl {
public:
  Impl(const Module &M, std::vector<PlanExec> Plans, CostModel Model,
       ExecLimits Limits)
      : M(M), Plans(std::move(Plans)), Model(Model), Limits(Limits) {}

  ExecutionReport run();

private:
  // -- Shadow helpers -----------------------------------------------------
  bool evalShadow(const Frame &F, size_t P, const ShadowVal &SV) const {
    return SV.IsLiteral ? SV.Literal : F.Shadow[P][SV.Var->getId()] != 0;
  }
  bool runOps(size_t P, const std::vector<ShadowOp> &Ops, Frame &F,
              const Instruction *At);
  bool runBefore(const Instruction *I, Frame &F) {
    for (size_t P = 0; P != Plans.size(); ++P)
      if (!runOps(P, Plans[P].Plan->before(I), F, I))
        return false;
    return true;
  }
  bool runAfter(const Instruction *I, Frame &F) {
    for (size_t P = 0; P != Plans.size(); ++P)
      if (!runOps(P, Plans[P].Plan->after(I), F, I))
        return false;
    return true;
  }
  bool runEntry(const Function *Fn, Frame &F, const Instruction *At) {
    for (size_t P = 0; P != Plans.size(); ++P)
      if (!runOps(P, Plans[P].Plan->entry(Fn), F, At))
        return false;
    return true;
  }

  // -- Base semantics -----------------------------------------------------
  Value evalOperand(const Frame &F, const Operand &Op) const;
  bool oracleOf(const Frame &F, const Operand &Op) const {
    return Op.isVar() ? F.Oracle[Op.getVar()->getId()] != 0 : true;
  }
  Value applyBinOp(BinOpcode Op, const Value &A, const Value &B) const;

  bool trap(const std::string &Msg) {
    Report.Reason = ExitReason::Trap;
    Report.TrapMessage = Msg;
    return false;
  }

  /// Resolves a pointer operand to a valid (instance, field); traps
  /// otherwise.
  bool resolve(const Frame &F, const Operand &Op, uint32_t &Inst,
               uint32_t &Field);

  void warnTool(size_t P, const Instruction *I) { ++ToolWarnCounts[P][I]; }
  void warnOracle(const Instruction *I) { ++OracleWarnCounts[I]; }

  bool pushFrame(const Function *Fn);
  bool step();

  const Module &M;
  std::vector<PlanExec> Plans;
  CostModel Model;
  ExecLimits Limits;

  std::vector<Instance> Instances;
  std::unordered_map<const MemObject *, uint32_t> GlobalInstances;
  std::vector<Frame> Frames;

  // Shadow transfer registers (sigma_g), one bank per plan.
  std::vector<std::vector<uint8_t>> ArgShadow;
  std::vector<uint8_t> RetShadow;
  // Base-value transfer for returns.
  Value RetVal;
  bool RetOracle = true;

  ExecutionReport Report;
  std::vector<std::map<const Instruction *, uint64_t>> ToolWarnCounts;
  std::map<const Instruction *, uint64_t> OracleWarnCounts;
  bool Done = false;
};

Value Interpreter::Impl::evalOperand(const Frame &F, const Operand &Op) const {
  switch (Op.getKind()) {
  case Operand::Kind::Const:
    return Value::integer(Op.getConst());
  case Operand::Kind::Var:
    return F.Vars[Op.getVar()->getId()];
  case Operand::Kind::Global:
    return Value::pointer(GlobalInstances.at(Op.getGlobal()), 0);
  case Operand::Kind::None:
    break;
  }
  return Value::integer(0);
}

Value Interpreter::Impl::applyBinOp(BinOpcode Op, const Value &A,
                                    const Value &B) const {
  // Pointers order by (instance, field) and never equal plain integers;
  // arithmetic degrades them to a deterministic integer encoding.
  auto Key = [](const Value &V) -> int64_t {
    if (!V.IsPtr)
      return V.Int;
    return (1LL << 62) + (static_cast<int64_t>(V.Inst) << 24) + V.Field;
  };
  int64_t X = Key(A), Y = Key(B);
  switch (Op) {
  case BinOpcode::Add:
    return Value::integer(static_cast<int64_t>(
        static_cast<uint64_t>(X) + static_cast<uint64_t>(Y)));
  case BinOpcode::Sub:
    return Value::integer(static_cast<int64_t>(
        static_cast<uint64_t>(X) - static_cast<uint64_t>(Y)));
  case BinOpcode::Mul:
    return Value::integer(static_cast<int64_t>(
        static_cast<uint64_t>(X) * static_cast<uint64_t>(Y)));
  case BinOpcode::Div:
    return Value::integer(Y == 0 ? 0 : X / Y);
  case BinOpcode::Rem:
    return Value::integer(Y == 0 ? 0 : X % Y);
  case BinOpcode::And:
    return Value::integer(X & Y);
  case BinOpcode::Or:
    return Value::integer(X | Y);
  case BinOpcode::Xor:
    return Value::integer(X ^ Y);
  case BinOpcode::Shl:
    return Value::integer(static_cast<int64_t>(static_cast<uint64_t>(X)
                                               << (Y & 63)));
  case BinOpcode::Shr:
    return Value::integer(
        static_cast<int64_t>(static_cast<uint64_t>(X) >> (Y & 63)));
  case BinOpcode::CmpEQ:
    return Value::integer(X == Y);
  case BinOpcode::CmpNE:
    return Value::integer(X != Y);
  case BinOpcode::CmpLT:
    return Value::integer(X < Y);
  case BinOpcode::CmpLE:
    return Value::integer(X <= Y);
  case BinOpcode::CmpGT:
    return Value::integer(X > Y);
  case BinOpcode::CmpGE:
    return Value::integer(X >= Y);
  }
  return Value::integer(0);
}

bool Interpreter::Impl::resolve(const Frame &F, const Operand &Op,
                                uint32_t &Inst, uint32_t &Field) {
  Value P = evalOperand(F, Op);
  if (!P.IsPtr)
    return trap("dereference of a non-pointer value");
  if (P.Inst >= Instances.size())
    return trap("dereference of a dangling pointer");
  if (P.Field >= Instances[P.Inst].Cells.size())
    return trap("field access out of range");
  Inst = P.Inst;
  Field = P.Field;
  return true;
}

bool Interpreter::Impl::runOps(size_t P, const std::vector<ShadowOp> &Ops,
                               Frame &F, const Instruction *At) {
  PlanReport &PR = Report.PlanResults[P];
  for (const ShadowOp &Op : Ops) {
    size_t Cells = 1;
    switch (Op.K) {
    case ShadowOp::Kind::SetVar:
      F.Shadow[P][Op.Dst->getId()] = evalShadow(F, P, Op.Srcs[0]);
      break;
    case ShadowOp::Kind::AndVar: {
      bool V = true;
      for (const ShadowVal &SV : Op.Srcs)
        V = V && evalShadow(F, P, SV);
      F.Shadow[P][Op.Dst->getId()] = V;
      break;
    }
    case ShadowOp::Kind::SetMemCell: {
      uint32_t Inst, Field;
      if (!resolve(F, Op.Ptr, Inst, Field))
        return false;
      Instances[Inst].Shadow[P][Field] = evalShadow(F, P, Op.Srcs[0]);
      break;
    }
    case ShadowOp::Kind::SetMemObject: {
      uint32_t Inst, Field;
      if (!resolve(F, Op.Ptr, Inst, Field))
        return false;
      Instance &In = Instances[Inst];
      Cells = In.Shadow[P].size();
      bool V = evalShadow(F, P, Op.Srcs[0]);
      for (uint8_t &S : In.Shadow[P])
        S = V;
      break;
    }
    case ShadowOp::Kind::LoadMem: {
      uint32_t Inst, Field;
      if (!resolve(F, Op.Ptr, Inst, Field))
        return false;
      F.Shadow[P][Op.Dst->getId()] = Instances[Inst].Shadow[P][Field];
      break;
    }
    case ShadowOp::Kind::ArgOut:
      if (Op.Index >= ArgShadow[P].size())
        ArgShadow[P].resize(Op.Index + 1, 1);
      ArgShadow[P][Op.Index] = evalShadow(F, P, Op.Srcs[0]);
      break;
    case ShadowOp::Kind::ParamIn:
      F.Shadow[P][Op.Dst->getId()] =
          Op.Index < ArgShadow[P].size() ? ArgShadow[P][Op.Index] : 1;
      break;
    case ShadowOp::Kind::RetOut:
      RetShadow[P] = evalShadow(F, P, Op.Srcs[0]);
      break;
    case ShadowOp::Kind::RetIn:
      F.Shadow[P][Op.Dst->getId()] = RetShadow[P];
      break;
    case ShadowOp::Kind::Check:
      ++PR.DynChecks;
      PR.ShadowCost += Model.shadowCost(Op, Cells);
      if (!evalShadow(F, P, Op.Srcs[0]))
        warnTool(P, At);
      continue;
    case ShadowOp::Kind::CheckBounds: {
      // Spatial-safety check: reads the concrete pointer value, never a
      // shadow, and never traps — an out-of-range pointer is the finding,
      // not an execution error.
      ++PR.DynChecks;
      PR.ShadowCost += Model.shadowCost(Op, Cells);
      Value Ptr = evalOperand(F, Op.Ptr);
      if (Ptr.IsPtr && (Ptr.Inst >= Instances.size() ||
                        Ptr.Field >= Instances[Ptr.Inst].Cells.size()))
        warnTool(P, At);
      continue;
    }
    }
    ++PR.DynShadowOps;
    PR.ShadowCost += Model.shadowCost(Op, Cells);
  }
  return true;
}

bool Interpreter::Impl::pushFrame(const Function *Fn) {
  if (Frames.size() >= Limits.MaxCallDepth)
    return trap("call depth limit exceeded");
  if (Limits.CollectCoverage &&
      Frames.size() + 1 > Report.MaxFrameDepth)
    Report.MaxFrameDepth = static_cast<uint32_t>(Frames.size() + 1);
  Frames.emplace_back();
  Frame &F = Frames.back();
  F.Fn = Fn;
  F.Block = Fn->getEntry()->getId();
  F.Index = 0;
  F.Vars.resize(Fn->variables().size());
  F.Shadow.resize(Plans.size());
  for (size_t P = 0; P != Plans.size(); ++P)
    F.Shadow[P].assign(Fn->variables().size(),
                       Plans[P].Sem.FrameInit ? 1 : 0);
  F.Oracle.assign(Fn->variables().size(), 0);
  return true;
}

bool Interpreter::Impl::step() {
  Frame &F = Frames.back();
  const BasicBlock *BB = F.Fn->blocks()[F.Block].get();
  assert(F.Index < BB->size() && "fell off the end of a block");
  const Instruction *I = BB->instructions()[F.Index].get();

  // Resuming after a call: the return value is already bound; run the
  // call's after-instrumentation and advance.
  if (F.ResumeAfterCall) {
    F.ResumeAfterCall = false;
    if (!runAfter(I, F))
      return false;
    ++F.Index;
    return true;
  }

  if (++Report.Steps > Limits.MaxSteps) {
    Report.Reason = ExitReason::StepLimit;
    return false;
  }
  // Cooperative interrupt poll, rate-limited so the common case stays one
  // untaken branch per step.
  if (Limits.Interrupt && (Report.Steps & 0xFFF) == 0 &&
      Limits.Interrupt->load(std::memory_order_relaxed)) {
    Report.Reason = ExitReason::Interrupted;
    return false;
  }
  Report.BaseCost += Model.baseCost(*I);

  if (!runBefore(I, F))
    return false;

  bool Advance = true;
  switch (I->getKind()) {
  case Instruction::IKind::Copy: {
    const auto *C = cast<CopyInst>(I);
    F.Vars[I->getDef()->getId()] = evalOperand(F, C->getSrc());
    F.Oracle[I->getDef()->getId()] = oracleOf(F, C->getSrc());
    break;
  }
  case Instruction::IKind::BinOp: {
    const auto *B = cast<BinOpInst>(I);
    F.Vars[I->getDef()->getId()] =
        applyBinOp(B->getOpcode(), evalOperand(F, B->getLHS()),
                   evalOperand(F, B->getRHS()));
    F.Oracle[I->getDef()->getId()] =
        oracleOf(F, B->getLHS()) && oracleOf(F, B->getRHS());
    break;
  }
  case Instruction::IKind::Alloc: {
    const auto *A = cast<AllocInst>(I);
    if (Instances.size() >= Limits.MaxInstances)
      return trap("allocation limit exceeded");
    const MemObject *Obj = A->getObject();
    Instances.emplace_back();
    Instance &In = Instances.back();
    In.Obj = Obj;
    In.Cells.assign(Obj->getNumFields(), Value::integer(0));
    // Tool shadows default to "good"; any allocation whose state can
    // matter to a client is instrumented with an explicit SetMemObject.
    In.Shadow.resize(Plans.size());
    for (size_t P = 0; P != Plans.size(); ++P)
      In.Shadow[P].assign(Obj->getNumFields(), 1);
    In.Oracle.assign(Obj->getNumFields(), Obj->isInitialized() ? 1 : 0);
    F.Vars[I->getDef()->getId()] =
        Value::pointer(static_cast<uint32_t>(Instances.size() - 1), 0);
    F.Oracle[I->getDef()->getId()] = 1;
    break;
  }
  case Instruction::IKind::FieldAddr: {
    const auto *FA = cast<FieldAddrInst>(I);
    Value Base = evalOperand(F, FA->getBase());
    if (!Base.IsPtr)
      return trap("gep on a non-pointer value");
    Value Index = evalOperand(F, FA->getIndex());
    if (Index.IsPtr)
      return trap("gep with a pointer-valued index");
    if (Index.Int < 0)
      return trap("gep with a negative index");
    F.Vars[I->getDef()->getId()] = Value::pointer(
        Base.Inst, Base.Field + static_cast<uint32_t>(Index.Int));
    F.Oracle[I->getDef()->getId()] =
        oracleOf(F, FA->getBase()) && oracleOf(F, FA->getIndex());
    break;
  }
  case Instruction::IKind::Load: {
    const auto *L = cast<LoadInst>(I);
    if (!oracleOf(F, L->getPtr()))
      warnOracle(I);
    uint32_t Inst, Field;
    if (!resolve(F, L->getPtr(), Inst, Field))
      return false;
    F.Vars[I->getDef()->getId()] = Instances[Inst].Cells[Field];
    F.Oracle[I->getDef()->getId()] = Instances[Inst].Oracle[Field];
    break;
  }
  case Instruction::IKind::Store: {
    const auto *St = cast<StoreInst>(I);
    if (!oracleOf(F, St->getPtr()))
      warnOracle(I);
    uint32_t Inst, Field;
    if (!resolve(F, St->getPtr(), Inst, Field))
      return false;
    Instances[Inst].Cells[Field] = evalOperand(F, St->getValue());
    Instances[Inst].Oracle[Field] = oracleOf(F, St->getValue());
    break;
  }
  case Instruction::IKind::Call: {
    const auto *C = cast<CallInst>(I);
    const Function *Callee = C->getCallee();
    std::vector<Value> Args;
    std::vector<uint8_t> ArgOracles;
    for (const Operand &Arg : C->getArgs()) {
      Args.push_back(evalOperand(F, Arg));
      ArgOracles.push_back(oracleOf(F, Arg));
    }
    F.ResumeAfterCall = true;
    if (!pushFrame(Callee))
      return false;
    Frame &NewF = Frames.back();
    for (size_t Idx = 0; Idx != Args.size(); ++Idx) {
      const Variable *P = Callee->params()[Idx];
      NewF.Vars[P->getId()] = Args[Idx];
      NewF.Oracle[P->getId()] = ArgOracles[Idx];
    }
    if (!runEntry(Callee, NewF, I))
      return false;
    return true; // Control continues in the callee.
  }
  case Instruction::IKind::CondBr: {
    const auto *B = cast<CondBrInst>(I);
    if (B->getCond().isVar() && !oracleOf(F, B->getCond()))
      warnOracle(I);
    Value Cond = evalOperand(F, B->getCond());
    bool Taken = Cond.IsPtr || Cond.Int != 0;
    uint32_t Target = (Taken ? B->getTrueBB() : B->getFalseBB())->getId();
    if (Limits.CollectCoverage)
      ++Report.EdgeHits[edgeKey(F.Fn->getId(), F.Block, Target)];
    F.Block = Target;
    F.Index = 0;
    Advance = false;
    break;
  }
  case Instruction::IKind::Goto: {
    uint32_t Target = cast<GotoInst>(I)->getTarget()->getId();
    if (Limits.CollectCoverage)
      ++Report.EdgeHits[edgeKey(F.Fn->getId(), F.Block, Target)];
    F.Block = Target;
    F.Index = 0;
    Advance = false;
    break;
  }
  case Instruction::IKind::Ret: {
    const auto *R = cast<RetInst>(I);
    if (R->getValue().isNone()) {
      RetVal = Value::integer(0);
      RetOracle = false; // Capturing a void return is undefined.
    } else {
      RetVal = evalOperand(F, R->getValue());
      RetOracle = oracleOf(F, R->getValue());
    }
    Frames.pop_back();
    if (Frames.empty()) {
      Report.MainResult = RetVal.IsPtr ? 0 : RetVal.Int;
      Done = true;
      return false;
    }
    Frame &Caller = Frames.back();
    const BasicBlock *CallerBB = Caller.Fn->blocks()[Caller.Block].get();
    const Instruction *CallI = CallerBB->instructions()[Caller.Index].get();
    if (const Variable *Def = CallI->getDef()) {
      Caller.Vars[Def->getId()] = RetVal;
      Caller.Oracle[Def->getId()] = RetOracle;
    }
    return true; // Caller resumes via ResumeAfterCall.
  }
  }

  if (!runAfter(I, F))
    return false;
  if (Advance)
    ++F.Index;
  return true;
}

ExecutionReport Interpreter::Impl::run() {
  Report = ExecutionReport();
  Report.Reason = ExitReason::Finished;
  Report.PlanResults.resize(Plans.size());
  ArgShadow.assign(Plans.size(), {});
  RetShadow.assign(Plans.size(), 1);
  ToolWarnCounts.assign(Plans.size(), {});

  // Instantiate globals. Their shadows are initialized statically (shadow
  // memory of globals is set up at link time in a real MSan pipeline), so
  // this costs nothing at run time.
  for (const auto &Obj : M.objects()) {
    if (!Obj->isGlobal())
      continue;
    Instances.emplace_back();
    Instance &In = Instances.back();
    In.Obj = Obj.get();
    In.Cells.assign(Obj->getNumFields(), Value::integer(0));
    In.Shadow.resize(Plans.size());
    for (size_t P = 0; P != Plans.size(); ++P)
      In.Shadow[P].assign(Obj->getNumFields(),
                          Plans[P].Sem.GlobalsFromInit
                              ? (Obj->isInitialized() ? 1 : 0)
                              : 1);
    In.Oracle.assign(Obj->getNumFields(), Obj->isInitialized() ? 1 : 0);
    GlobalInstances[Obj.get()] = static_cast<uint32_t>(Instances.size() - 1);
  }

  const Function *Main = M.findFunction("main");
  assert(Main && "module has no main (verifier should have caught this)");
  if (!pushFrame(Main))
    return Report;
  if (!runEntry(Main, Frames.back(), nullptr))
    return Report;

  while (!Done && step()) {
  }

  // The count maps are keyed by pointer; emit the warnings in program
  // order (module-unique instruction ids), not heap-layout order, so the
  // report is stable across runs and processes.
  auto ById = [](const Warning &A, const Warning &B) {
    return A.At->getId() < B.At->getId();
  };
  for (size_t P = 0; P != Plans.size(); ++P) {
    PlanReport &PR = Report.PlanResults[P];
    for (const auto &[I, N] : ToolWarnCounts[P])
      PR.ToolWarnings.push_back({I, N});
    std::sort(PR.ToolWarnings.begin(), PR.ToolWarnings.end(), ById);
    // Legacy aggregates: plan 0's warnings, summed counters. A single-plan
    // run sums exactly one addend, so its report is bit-identical to the
    // pre-framework interpreter's.
    Report.DynShadowOps += PR.DynShadowOps;
    Report.DynChecks += PR.DynChecks;
    Report.ShadowCost += PR.ShadowCost;
  }
  if (!Plans.empty())
    Report.ToolWarnings = Report.PlanResults[0].ToolWarnings;
  for (const auto &[I, N] : OracleWarnCounts)
    Report.OracleWarnings.push_back({I, N});
  std::sort(Report.OracleWarnings.begin(), Report.OracleWarnings.end(), ById);
  return Report;
}

static std::vector<PlanExec> singlePlan(const InstrumentationPlan *Plan) {
  std::vector<PlanExec> Plans;
  if (Plan)
    Plans.push_back({Plan, core::ShadowSemantics()});
  return Plans;
}

Interpreter::Interpreter(const Module &M, const InstrumentationPlan *Plan,
                         CostModel Model, ExecLimits Limits)
    : PImpl(std::make_unique<Impl>(M, singlePlan(Plan), Model, Limits)) {}

Interpreter::Interpreter(const Module &M, std::vector<PlanExec> Plans,
                         CostModel Model, ExecLimits Limits)
    : PImpl(std::make_unique<Impl>(M, std::move(Plans), Model, Limits)) {}

Interpreter::~Interpreter() = default;

ExecutionReport Interpreter::run() { return PImpl->run(); }
