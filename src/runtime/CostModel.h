//===- runtime/CostModel.h - Modeled execution costs ------------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts executed operations into modeled time. The paper reports
/// slowdowns of instrumented binaries on x86; this reproduction executes
/// TinyC in a deterministic interpreter, so "slowdown" is the ratio of
/// modeled shadow cost to modeled base cost:
///
///     slowdown% = 100 * shadowCost / baseCost
///
/// The constants were calibrated ONCE so that full (MSan-style)
/// instrumentation lands in MSan's published 2x-3x band on the workload
/// suite; they are never tuned per benchmark or per tool variant, so every
/// relative comparison (Figure 10's orderings and gaps) is parameter-free.
/// Shadow memory traffic is deliberately more expensive than top-level
/// shadow moves: on real hardware it costs address arithmetic plus extra
/// cache traffic (MSan's masked offset-based shadow scheme).
///
//===----------------------------------------------------------------------===//

#ifndef USHER_RUNTIME_COSTMODEL_H
#define USHER_RUNTIME_COSTMODEL_H

#include "core/InstrumentationPlan.h"
#include "ir/IR.h"

namespace usher {
namespace runtime {

/// Modeled costs, in abstract cycles.
struct CostModel {
  // Base instruction costs.
  double Copy = 1.0;
  double BinOp = 1.0;
  double Alloc = 2.5;
  double FieldAddr = 1.0;
  double Load = 1.6;
  double Store = 1.6;
  double Call = 3.0;
  double CondBr = 1.2;
  double Goto = 0.4;
  double Ret = 1.0;

  // Shadow operation costs.
  double SetVar = 1.4;
  double AndVar = 2.4;
  double SetMemCell = 5.0;
  double SetMemObjectBase = 3.0;
  double SetMemObjectPerCell = 0.6;
  double LoadMem = 5.0;
  double ArgOut = 1.7;
  double ParamIn = 1.7;
  double RetOut = 1.7;
  double RetIn = 1.7;
  double Check = 2.2;
  /// A bounds check compares the formed pointer against its object's
  /// field range (two comparisons plus the range load) — slightly more
  /// than the single shadow-bit Check.
  double CheckBounds = 2.8;

  /// Modeled cost of executing \p I (without instrumentation).
  double baseCost(const ir::Instruction &I) const {
    switch (I.getKind()) {
    case ir::Instruction::IKind::Copy:
      return Copy;
    case ir::Instruction::IKind::BinOp:
      return BinOp;
    case ir::Instruction::IKind::Alloc:
      return Alloc;
    case ir::Instruction::IKind::FieldAddr:
      return FieldAddr;
    case ir::Instruction::IKind::Load:
      return Load;
    case ir::Instruction::IKind::Store:
      return Store;
    case ir::Instruction::IKind::Call:
      return Call;
    case ir::Instruction::IKind::CondBr:
      return CondBr;
    case ir::Instruction::IKind::Goto:
      return Goto;
    case ir::Instruction::IKind::Ret:
      return Ret;
    }
    return 1.0;
  }

  /// Modeled cost of one shadow operation touching \p Cells cells.
  double shadowCost(const core::ShadowOp &Op, size_t Cells = 1) const {
    switch (Op.K) {
    case core::ShadowOp::Kind::SetVar:
      return SetVar;
    case core::ShadowOp::Kind::AndVar:
      return AndVar;
    case core::ShadowOp::Kind::SetMemCell:
      return SetMemCell;
    case core::ShadowOp::Kind::SetMemObject:
      return SetMemObjectBase + SetMemObjectPerCell * static_cast<double>(Cells);
    case core::ShadowOp::Kind::LoadMem:
      return LoadMem;
    case core::ShadowOp::Kind::ArgOut:
      return ArgOut;
    case core::ShadowOp::Kind::ParamIn:
      return ParamIn;
    case core::ShadowOp::Kind::RetOut:
      return RetOut;
    case core::ShadowOp::Kind::RetIn:
      return RetIn;
    case core::ShadowOp::Kind::Check:
      return Check;
    case core::ShadowOp::Kind::CheckBounds:
      return CheckBounds;
    }
    return 1.0;
  }
};

} // namespace runtime
} // namespace usher

#endif // USHER_RUNTIME_COSTMODEL_H
