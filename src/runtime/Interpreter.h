//===- runtime/Interpreter.h - Shadow-memory interpreter --------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic interpreter for TinyC that optionally executes an
/// InstrumentationPlan alongside the program, exactly as an MSan-style
/// runtime would: boolean shadows for top-level variables (per frame) and
/// for memory cells, shadow transfer registers across calls, and runtime
/// checks at critical operations.
///
/// Independently of any plan, the interpreter maintains an *oracle*: the
/// precise definedness of every value. Oracle warnings are the ground
/// truth that instrumented runs are compared against in tests, and the
/// oracle is never charged to the modeled execution cost.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_RUNTIME_INTERPRETER_H
#define USHER_RUNTIME_INTERPRETER_H

#include "core/InstrumentationPlan.h"
#include "core/SanitizerClient.h"
#include "runtime/CostModel.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace usher {
namespace runtime {

/// Why an execution stopped.
enum class ExitReason {
  Finished,       ///< main returned.
  StepLimit,      ///< exceeded ExecLimits::MaxSteps.
  Trap,           ///< wild pointer, out-of-range field, call-depth, ...
  Interrupted,    ///< ExecLimits::Interrupt was raised (e.g. SIGINT).
};

/// Resource limits for one execution.
struct ExecLimits {
  uint64_t MaxSteps = 200'000'000;
  uint32_t MaxCallDepth = 4096;
  uint32_t MaxInstances = 4'000'000;
  /// Cooperative cancellation: when non-null, the interpreter polls this
  /// flag periodically (every few thousand steps) and stops with
  /// ExitReason::Interrupted once it reads true. Signal handlers set the
  /// flag; the interpreter does the orderly stop, so a partial report is
  /// always available for flushing.
  const std::atomic<bool> *Interrupt = nullptr;
  /// Record executed control-flow edges and the peak frame depth in the
  /// report (ExecutionReport::EdgeHits / MaxFrameDepth). Off by default:
  /// the counters are cheap but not free, and only the fuzzer's coverage
  /// scheduler needs them.
  bool CollectCoverage = false;
};

/// Stable 64-bit key for one executed control-flow edge: the function's
/// module id plus the source and target block ids (valid after
/// Module::renumber(), which both the parser and generator guarantee).
inline uint64_t edgeKey(uint32_t FnId, uint32_t FromBlock, uint32_t ToBlock) {
  return (static_cast<uint64_t>(FnId) << 40) |
         (static_cast<uint64_t>(FromBlock) << 20) |
         static_cast<uint64_t>(ToBlock);
}

/// A deduplicated runtime warning ("use of undefined value").
struct Warning {
  const ir::Instruction *At;
  uint64_t Occurrences;
};

/// One instrumentation plan to execute, paired with the shadow semantics
/// of the client it belongs to. Several PlanExecs run side by side in a
/// single pass: each gets its own shadow planes (frame slots, memory
/// cells, transfer registers), while the base execution is shared.
struct PlanExec {
  const core::InstrumentationPlan *Plan = nullptr;
  core::ShadowSemantics Sem;
};

/// Per-plan outcome of a multi-client run.
struct PlanReport {
  std::vector<Warning> ToolWarnings;
  uint64_t DynShadowOps = 0;
  uint64_t DynChecks = 0;
  double ShadowCost = 0;
};

/// Everything one execution produced.
struct ExecutionReport {
  ExitReason Reason = ExitReason::Finished;
  std::string TrapMessage;
  int64_t MainResult = 0;

  uint64_t Steps = 0;
  double BaseCost = 0;
  double ShadowCost = 0;
  uint64_t DynShadowOps = 0; ///< Executed shadow operations (non-check).
  uint64_t DynChecks = 0;    ///< Executed runtime checks.

  /// Tool warnings (from plan checks), keyed by instruction id. With
  /// several plans this aggregates plan 0 only (the legacy field); see
  /// PlanResults for per-plan warning sets.
  std::vector<Warning> ToolWarnings;
  /// Ground-truth warnings: undefined values used at critical operations.
  std::vector<Warning> OracleWarnings;

  /// Per-plan results, in the order the plans were passed. A single-plan
  /// run has exactly one entry whose fields equal the legacy aggregates.
  std::vector<PlanReport> PlanResults;

  /// Executed control-flow edges (branch/goto transfers), keyed by
  /// edgeKey(); populated only with ExecLimits::CollectCoverage.
  std::unordered_map<uint64_t, uint64_t> EdgeHits;
  /// Deepest call stack reached (frames alive at once); only with
  /// ExecLimits::CollectCoverage.
  uint32_t MaxFrameDepth = 0;

  /// Modeled slowdown over native execution, in percent (the unit of
  /// Figure 10). Zero when no plan was executed.
  double slowdownPercent() const {
    return BaseCost > 0 ? 100.0 * ShadowCost / BaseCost : 0.0;
  }

  /// True if a tool warning was recorded at \p I.
  bool toolWarnedAt(const ir::Instruction *I) const;
};

/// Executes TinyC modules.
class Interpreter {
public:
  /// Prepares to run \p M, optionally under \p Plan (null = native run).
  /// Both must outlive the interpreter. Equivalent to the multi-plan
  /// constructor with a single UUV-semantics PlanExec.
  Interpreter(const ir::Module &M, const core::InstrumentationPlan *Plan,
              CostModel Model = CostModel(), ExecLimits Limits = ExecLimits());

  /// Prepares to run \p M under several plans at once (one per client).
  /// The module and every plan must outlive the interpreter.
  Interpreter(const ir::Module &M, std::vector<PlanExec> Plans,
              CostModel Model = CostModel(), ExecLimits Limits = ExecLimits());
  ~Interpreter();

  /// Runs main() to completion (or a limit) and returns the report.
  ExecutionReport run();

private:
  class Impl;
  std::unique_ptr<Impl> PImpl;
};

} // namespace runtime
} // namespace usher

#endif // USHER_RUNTIME_INTERPRETER_H
