//===- parser/Lexer.cpp - TinyC tokenizer ---------------------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "parser/Lexer.h"

#include <cctype>

using namespace usher;
using namespace usher::parser;

namespace {

class LexerImpl {
public:
  explicit LexerImpl(std::string_view Source) : Src(Source) {}

  std::vector<Token> run();

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = Src[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }
  bool atEnd() const { return Pos >= Src.size(); }

  void push(TokenKind K, std::string Text) {
    Token T;
    T.Kind = K;
    T.Text = std::move(Text);
    T.Line = TokLine;
    T.Col = TokCol;
    Tokens.push_back(std::move(T));
  }

  void pushInt(int64_t Value, std::string Text) {
    push(TokenKind::Int, std::move(Text));
    Tokens.back().IntValue = Value;
  }

  void skipTrivia();
  bool lexOne();

  std::string_view Src;
  size_t Pos = 0;
  unsigned Line = 1, Col = 1;
  unsigned TokLine = 1, TokCol = 1;
  std::vector<Token> Tokens;
};

} // namespace

void LexerImpl::skipTrivia() {
  while (!atEnd()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    break;
  }
}

bool LexerImpl::lexOne() {
  skipTrivia();
  TokLine = Line;
  TokCol = Col;
  if (atEnd()) {
    push(TokenKind::Eof, "");
    return false;
  }

  char C = advance();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Text(1, C);
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_' ||
           peek() == '.')
      Text.push_back(advance());
    push(TokenKind::Ident, std::move(Text));
    return true;
  }
  if (std::isdigit(static_cast<unsigned char>(C))) {
    std::string Text(1, C);
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Text.push_back(advance());
    int64_t Value = std::stoll(Text);
    pushInt(Value, std::move(Text));
    return true;
  }

  switch (C) {
  case ';':
    push(TokenKind::Semi, ";");
    return true;
  case ',':
    push(TokenKind::Comma, ",");
    return true;
  case '(':
    push(TokenKind::LParen, "(");
    return true;
  case ')':
    push(TokenKind::RParen, ")");
    return true;
  case '{':
    push(TokenKind::LBrace, "{");
    return true;
  case '}':
    push(TokenKind::RBrace, "}");
    return true;
  case '[':
    push(TokenKind::LBracket, "[");
    return true;
  case ']':
    push(TokenKind::RBracket, "]");
    return true;
  case ':':
    push(TokenKind::Colon, ":");
    return true;
  case '*':
    push(TokenKind::Star, "*");
    return true;
  case '+':
    push(TokenKind::Plus, "+");
    return true;
  case '-':
    push(TokenKind::Minus, "-");
    return true;
  case '/':
    push(TokenKind::Slash, "/");
    return true;
  case '%':
    push(TokenKind::Percent, "%");
    return true;
  case '&':
    push(TokenKind::Amp, "&");
    return true;
  case '|':
    push(TokenKind::Pipe, "|");
    return true;
  case '^':
    push(TokenKind::Caret, "^");
    return true;
  case '=':
    if (peek() == '=') {
      advance();
      push(TokenKind::EqEq, "==");
    } else {
      push(TokenKind::Assign, "=");
    }
    return true;
  case '!':
    if (peek() == '=') {
      advance();
      push(TokenKind::NotEq, "!=");
      return true;
    }
    push(TokenKind::Error, "unexpected character '!'");
    return false;
  case '<':
    if (peek() == '<') {
      advance();
      push(TokenKind::Shl, "<<");
    } else if (peek() == '=') {
      advance();
      push(TokenKind::LessEq, "<=");
    } else {
      push(TokenKind::Less, "<");
    }
    return true;
  case '>':
    if (peek() == '>') {
      advance();
      push(TokenKind::Shr, ">>");
    } else if (peek() == '=') {
      advance();
      push(TokenKind::GreaterEq, ">=");
    } else {
      push(TokenKind::Greater, ">");
    }
    return true;
  default:
    push(TokenKind::Error, std::string("unexpected character '") + C + "'");
    return false;
  }
}

std::vector<Token> LexerImpl::run() {
  while (lexOne()) {
  }
  if (Tokens.empty() || (!Tokens.back().is(TokenKind::Eof) &&
                         !Tokens.back().is(TokenKind::Error))) {
    Token T;
    T.Kind = TokenKind::Eof;
    T.Line = Line;
    T.Col = Col;
    Tokens.push_back(std::move(T));
  }
  return std::move(Tokens);
}

std::vector<Token> parser::tokenize(std::string_view Source) {
  return LexerImpl(Source).run();
}
