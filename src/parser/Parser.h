//===- parser/Parser.h - TinyC text -> IR ------------------------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the textual TinyC syntax:
///
/// \code
///   global buf[16] uninit array;
///   func main() {
///     p = alloc stack 4 uninit;
///     q = gep p, 2;
///     *q = 7;
///     x = *q;
///     if x goto done;
///     x = x + 1;
///   done:
///     ret x;
///   }
/// \endcode
///
/// Functions may be referenced before their definition. Local variables are
/// created implicitly on first assignment; *using* an unknown name is a
/// parse error (this catches typos without requiring declarations).
///
//===----------------------------------------------------------------------===//

#ifndef USHER_PARSER_PARSER_H
#define USHER_PARSER_PARSER_H

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace usher {
namespace ir {
class Module;
}

namespace parser {

/// The outcome of parsing: a module (possibly null) plus diagnostics.
struct ParseResult {
  std::unique_ptr<ir::Module> M;
  std::vector<std::string> Errors;

  bool succeeded() const { return M != nullptr && Errors.empty(); }
};

/// Parses \p Source into a renumbered TinyC module. On failure the result
/// carries "line:col: message" diagnostics and a null module.
ParseResult parseModule(std::string_view Source);

/// Parses \p Source, verifying the result; aborts with diagnostics on any
/// failure. Intended for tests, examples and embedded workloads where the
/// source is trusted.
std::unique_ptr<ir::Module> parseModuleOrAbort(std::string_view Source);

} // namespace parser
} // namespace usher

#endif // USHER_PARSER_PARSER_H
