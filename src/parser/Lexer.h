//===- parser/Lexer.h - TinyC tokenizer -------------------------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the textual TinyC syntax. `//` starts a line comment.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_PARSER_LEXER_H
#define USHER_PARSER_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace usher {
namespace parser {

/// Token categories produced by the lexer.
enum class TokenKind {
  Eof,
  Ident,
  Int,
  // Punctuation.
  Assign,    // =
  Semi,      // ;
  Comma,     // ,
  LParen,    // (
  RParen,    // )
  LBrace,    // {
  RBrace,    // }
  LBracket,  // [
  RBracket,  // ]
  Colon,     // :
  Star,      // *
  // Operators (other than Star, which doubles as dereference).
  Plus,      // +
  Minus,     // -
  Slash,     // /
  Percent,   // %
  Amp,       // &
  Pipe,      // |
  Caret,     // ^
  Shl,       // <<
  Shr,       // >>
  EqEq,      // ==
  NotEq,     // !=
  Less,      // <
  LessEq,    // <=
  Greater,   // >
  GreaterEq, // >=
  Error
};

/// A single token with source coordinates.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;
  int64_t IntValue = 0;
  unsigned Line = 0;
  unsigned Col = 0;

  bool is(TokenKind K) const { return Kind == K; }
  /// True for an identifier spelled exactly \p Keyword.
  bool isKeyword(std::string_view Keyword) const {
    return Kind == TokenKind::Ident && Text == Keyword;
  }
};

/// Tokenizes \p Source. On a lexical error a single Error token carrying a
/// message is emitted at the offending position and lexing stops. The token
/// stream always ends with an Eof token.
std::vector<Token> tokenize(std::string_view Source);

} // namespace parser
} // namespace usher

#endif // USHER_PARSER_LEXER_H
