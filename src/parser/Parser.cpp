//===- parser/Parser.cpp - TinyC text -> IR -------------------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include "ir/IR.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "parser/Lexer.h"
#include "support/RawStream.h"

#include <cstdlib>
#include <map>
#include <set>

using namespace usher;
using namespace usher::parser;
using ir::BasicBlock;
using ir::BinOpcode;
using ir::Function;
using ir::MemObject;
using ir::Operand;
using ir::Region;
using ir::Variable;

namespace {

/// Names with fixed meaning that may not be used as variables or labels.
bool isReservedWord(const std::string &Name) {
  static const std::set<std::string> Reserved = {
      "global", "func", "alloc", "gep",    "if",     "goto",
      "ret",    "stack", "heap",  "init",  "uninit", "array",
      "var"};
  return Reserved.count(Name) != 0;
}

class ParserImpl {
public:
  ParserImpl(std::string_view Source) : Tokens(tokenize(Source)) {}

  ParseResult run();

private:
  // Token cursor helpers.
  const Token &peek(size_t Ahead = 0) const {
    size_t Idx = Pos + Ahead;
    return Idx < Tokens.size() ? Tokens[Idx] : Tokens.back();
  }
  const Token &advance() { return Tokens[Pos < Tokens.size() - 1 ? Pos++ : Pos]; }
  bool check(TokenKind K) const { return peek().is(K); }
  bool match(TokenKind K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }
  bool expect(TokenKind K, const char *What) {
    if (match(K))
      return true;
    error(std::string("expected ") + What + ", found " + foundDesc());
    return false;
  }

  /// What the error position holds, for "expected X, found Y" messages.
  /// Truncated input yields "end of input" instead of an empty quote.
  std::string foundDesc() const {
    const Token &T = peek();
    if (T.is(TokenKind::Eof))
      return "end of input";
    return "'" + T.Text + "'";
  }

  void error(const std::string &Msg) {
    const Token &T = peek();
    Errors.push_back(std::to_string(T.Line) + ":" + std::to_string(T.Col) +
                     ": " + Msg);
  }

  /// Skips tokens until just past the next ';' (or a brace boundary).
  void recover() {
    while (!check(TokenKind::Eof) && !check(TokenKind::RBrace)) {
      if (advance().is(TokenKind::Semi))
        return;
    }
  }

  // Pass 1: create functions (with params) and globals.
  void scanTopLevel();
  // Pass 2: parse bodies.
  void parseTopLevel();
  void parseGlobalDecl(bool Declare);
  void parseFunctionBody(Function *F);
  void parseStatement();
  bool parseOperand(Operand &Out);
  bool parseBinOpcode(BinOpcode &Out);

  Variable *resolveOrCreateDef(const std::string &Name);
  BasicBlock *lookupLabel(const std::string &Name);
  void startBlock(BasicBlock *BB);

  std::vector<Token> Tokens;
  size_t Pos = 0;
  std::vector<std::string> Errors;

  std::unique_ptr<ir::Module> M;
  std::unique_ptr<ir::IRBuilder> Builder;

  // Per-function parsing state.
  Function *CurFn = nullptr;
  bool Terminated = false;
  unsigned ContCounter = 0;
  unsigned ObjCounter = 0;
  std::map<std::string, BasicBlock *> Labels;
  std::set<std::string> DefinedLabels;
  std::map<std::string, unsigned> LabelRefLines;
};

} // namespace

void ParserImpl::scanTopLevel() {
  size_t Saved = Pos;
  while (!check(TokenKind::Eof) && !check(TokenKind::Error)) {
    if (peek().isKeyword("global")) {
      parseGlobalDecl(/*Declare=*/true);
      continue;
    }
    if (peek().isKeyword("func")) {
      advance();
      if (!check(TokenKind::Ident)) {
        error("expected function name after 'func'");
        break;
      }
      std::string Name = advance().Text;
      if (M->findFunction(Name)) {
        error("redefinition of function '" + Name + "'");
        break;
      }
      Function *F = M->createFunction(Name);
      if (!expect(TokenKind::LParen, "'('"))
        break;
      if (!check(TokenKind::RParen)) {
        do {
          if (!check(TokenKind::Ident)) {
            error("expected parameter name");
            break;
          }
          std::string PName = advance().Text;
          if (isReservedWord(PName))
            error("'" + PName + "' is reserved and cannot be a parameter");
          F->createVariable(PName, /*IsParam=*/true);
        } while (match(TokenKind::Comma));
      }
      if (!expect(TokenKind::RParen, "')'"))
        break;
      if (!expect(TokenKind::LBrace, "'{'"))
        break;
      // Skip to the matching brace.
      unsigned Depth = 1;
      while (Depth > 0 && !check(TokenKind::Eof)) {
        if (check(TokenKind::LBrace))
          ++Depth;
        else if (check(TokenKind::RBrace))
          --Depth;
        advance();
      }
      continue;
    }
    error("expected 'global' or 'func' at top level");
    break;
  }
  Pos = Saved;
}

void ParserImpl::parseGlobalDecl(bool Declare) {
  advance(); // 'global'
  if (!check(TokenKind::Ident)) {
    error("expected global name");
    recover();
    return;
  }
  std::string Name = advance().Text;
  int64_t Size = 1;
  if (match(TokenKind::LBracket)) {
    if (!check(TokenKind::Int)) {
      error("expected size in global declaration");
      recover();
      return;
    }
    Size = advance().IntValue;
    if (!expect(TokenKind::RBracket, "']'")) {
      recover();
      return;
    }
  }
  bool Initialized;
  if (peek().isKeyword("init")) {
    advance();
    Initialized = true;
  } else if (peek().isKeyword("uninit")) {
    advance();
    Initialized = false;
  } else {
    error("expected 'init' or 'uninit' in global declaration");
    recover();
    return;
  }
  bool IsArray = false;
  if (peek().isKeyword("array")) {
    advance();
    IsArray = true;
  }
  if (!expect(TokenKind::Semi, "';'")) {
    recover();
    return;
  }
  if (!Declare)
    return;
  if (Size <= 0 || Size > (1 << 20)) {
    error("global '" + Name + "' has invalid size");
    return;
  }
  if (M->findGlobal(Name)) {
    error("redefinition of global '" + Name + "'");
    return;
  }
  M->createObject(Name, Region::Global, static_cast<unsigned>(Size),
                  Initialized, IsArray);
}

ir::BasicBlock *ParserImpl::lookupLabel(const std::string &Name) {
  auto It = Labels.find(Name);
  if (It != Labels.end())
    return It->second;
  BasicBlock *BB = CurFn->createBlock(Name);
  Labels[Name] = BB;
  LabelRefLines[Name] = peek().Line;
  return BB;
}

void ParserImpl::startBlock(BasicBlock *BB) {
  if (!Terminated)
    Builder->createGoto(BB);
  Builder->setInsertPoint(BB);
  Terminated = false;
}

ir::Variable *ParserImpl::resolveOrCreateDef(const std::string &Name) {
  if (isReservedWord(Name)) {
    error("'" + Name + "' is reserved and cannot be assigned");
    return nullptr;
  }
  if (Variable *V = CurFn->findVariable(Name))
    return V;
  if (M->findGlobal(Name)) {
    error("cannot assign to global '" + Name +
          "' directly; store through a pointer instead");
    return nullptr;
  }
  return CurFn->createVariable(Name);
}

bool ParserImpl::parseOperand(Operand &Out) {
  if (check(TokenKind::Int)) {
    Out = Operand::constant(advance().IntValue);
    return true;
  }
  if (check(TokenKind::Minus) && peek(1).is(TokenKind::Int)) {
    advance();
    Out = Operand::constant(-advance().IntValue);
    return true;
  }
  if (check(TokenKind::Ident)) {
    std::string Name = peek().Text;
    if (Variable *V = CurFn->findVariable(Name)) {
      advance();
      Out = Operand::var(V);
      return true;
    }
    if (MemObject *G = M->findGlobal(Name)) {
      advance();
      Out = Operand::global(G);
      return true;
    }
    error("use of undefined name '" + Name + "'");
    return false;
  }
  error("expected an operand, found " + foundDesc());
  return false;
}

bool ParserImpl::parseBinOpcode(BinOpcode &Out) {
  switch (peek().Kind) {
  case TokenKind::Plus:
    Out = BinOpcode::Add;
    break;
  case TokenKind::Minus:
    Out = BinOpcode::Sub;
    break;
  case TokenKind::Star:
    Out = BinOpcode::Mul;
    break;
  case TokenKind::Slash:
    Out = BinOpcode::Div;
    break;
  case TokenKind::Percent:
    Out = BinOpcode::Rem;
    break;
  case TokenKind::Amp:
    Out = BinOpcode::And;
    break;
  case TokenKind::Pipe:
    Out = BinOpcode::Or;
    break;
  case TokenKind::Caret:
    Out = BinOpcode::Xor;
    break;
  case TokenKind::Shl:
    Out = BinOpcode::Shl;
    break;
  case TokenKind::Shr:
    Out = BinOpcode::Shr;
    break;
  case TokenKind::EqEq:
    Out = BinOpcode::CmpEQ;
    break;
  case TokenKind::NotEq:
    Out = BinOpcode::CmpNE;
    break;
  case TokenKind::Less:
    Out = BinOpcode::CmpLT;
    break;
  case TokenKind::LessEq:
    Out = BinOpcode::CmpLE;
    break;
  case TokenKind::Greater:
    Out = BinOpcode::CmpGT;
    break;
  case TokenKind::GreaterEq:
    Out = BinOpcode::CmpGE;
    break;
  default:
    return false;
  }
  advance();
  return true;
}

void ParserImpl::parseStatement() {
  // Instructions created for this statement cite its first token.
  Builder->setCurrentLoc({peek().Line, peek().Col});

  // Label: IDENT ':'.
  if (check(TokenKind::Ident) && peek(1).is(TokenKind::Colon)) {
    std::string Name = peek().Text;
    if (isReservedWord(Name)) {
      error("'" + Name + "' is reserved and cannot be a label");
      advance();
      advance();
      return;
    }
    advance();
    advance();
    BasicBlock *BB = lookupLabel(Name);
    if (!DefinedLabels.insert(Name).second) {
      error("redefinition of label '" + Name + "'");
      return;
    }
    if (!BB->empty()) {
      error("label '" + Name + "' already has code");
      return;
    }
    startBlock(BB);
    return;
  }

  // Any non-label statement after a terminator starts an unreachable
  // block; create one so parsing can continue (the verifier permits it
  // and removeUnreachableBlocks() cleans it up).
  if (Terminated) {
    BasicBlock *Dead =
        CurFn->createBlock("dead." + std::to_string(ContCounter++));
    Builder->setInsertPoint(Dead);
    Terminated = false;
  }

  // Declaration: 'var' NAME (',' NAME)* ';'. Creates (still undefined)
  // variables up front, so the printer can emit modules whose uses
  // precede their defs textually.
  if (peek().isKeyword("var")) {
    advance();
    do {
      if (!check(TokenKind::Ident)) {
        error("expected variable name in declaration");
        return recover();
      }
      std::string Name = advance().Text;
      if (isReservedWord(Name)) {
        error("'" + Name + "' is reserved and cannot be declared");
        return recover();
      }
      if (CurFn->findVariable(Name) || M->findGlobal(Name)) {
        error("redeclaration of '" + Name + "'");
        return recover();
      }
      CurFn->createVariable(Name);
    } while (match(TokenKind::Comma));
    if (!expect(TokenKind::Semi, "';'"))
      return recover();
    return;
  }

  // Store: '*' operand '=' operand ';'.
  if (match(TokenKind::Star)) {
    Operand Ptr, Val;
    if (!parseOperand(Ptr))
      return recover();
    if (!expect(TokenKind::Assign, "'='"))
      return recover();
    if (!parseOperand(Val))
      return recover();
    if (!expect(TokenKind::Semi, "';'"))
      return recover();
    Builder->createStore(Ptr, Val);
    return;
  }

  // Control flow.
  if (peek().isKeyword("if")) {
    advance();
    Operand Cond;
    if (!parseOperand(Cond))
      return recover();
    if (!(peek().isKeyword("goto"))) {
      error("expected 'goto' in if statement");
      return recover();
    }
    advance();
    if (!check(TokenKind::Ident)) {
      error("expected label after 'goto'");
      return recover();
    }
    std::string Target = advance().Text;
    if (!expect(TokenKind::Semi, "';'"))
      return recover();
    BasicBlock *TrueBB = lookupLabel(Target);
    BasicBlock *Cont =
        CurFn->createBlock("cont." + std::to_string(ContCounter++));
    Builder->createCondBr(Cond, TrueBB, Cont);
    Builder->setInsertPoint(Cont);
    Terminated = false;
    return;
  }
  if (peek().isKeyword("goto")) {
    advance();
    if (!check(TokenKind::Ident)) {
      error("expected label after 'goto'");
      return recover();
    }
    std::string Target = advance().Text;
    if (!expect(TokenKind::Semi, "';'"))
      return recover();
    Builder->createGoto(lookupLabel(Target));
    Terminated = true;
    return;
  }
  if (peek().isKeyword("ret")) {
    advance();
    Operand Val;
    if (!check(TokenKind::Semi)) {
      if (!parseOperand(Val))
        return recover();
    }
    if (!expect(TokenKind::Semi, "';'"))
      return recover();
    Builder->createRet(Val);
    Terminated = true;
    return;
  }

  // Bare call: IDENT '(' args ')' ';'.
  if (check(TokenKind::Ident) && peek(1).is(TokenKind::LParen)) {
    std::string Callee = advance().Text;
    Function *F = M->findFunction(Callee);
    if (!F) {
      error("call to undefined function '" + Callee + "'");
      return recover();
    }
    advance(); // '('
    std::vector<Operand> Args;
    if (!check(TokenKind::RParen)) {
      do {
        Operand Arg;
        if (!parseOperand(Arg))
          return recover();
        Args.push_back(Arg);
      } while (match(TokenKind::Comma));
    }
    if (!expect(TokenKind::RParen, "')'"))
      return recover();
    if (!expect(TokenKind::Semi, "';'"))
      return recover();
    if (Args.size() != F->params().size())
      error("call to '" + Callee + "' passes " + std::to_string(Args.size()) +
            " args, expected " + std::to_string(F->params().size()));
    else
      Builder->createCall(nullptr, F, std::move(Args));
    return;
  }

  // Assignment: IDENT '=' rhs ';'.
  if (check(TokenKind::Ident) && peek(1).is(TokenKind::Assign)) {
    std::string DefName = advance().Text;
    advance(); // '='

    // RHS: alloc.
    if (peek().isKeyword("alloc")) {
      advance();
      Region R;
      if (peek().isKeyword("stack")) {
        R = Region::Stack;
      } else if (peek().isKeyword("heap")) {
        R = Region::Heap;
      } else {
        error("expected 'stack' or 'heap' after 'alloc'");
        return recover();
      }
      advance();
      if (!check(TokenKind::Int)) {
        error("expected field count in alloc");
        return recover();
      }
      int64_t Fields = advance().IntValue;
      bool Initialized;
      if (peek().isKeyword("init")) {
        Initialized = true;
      } else if (peek().isKeyword("uninit")) {
        Initialized = false;
      } else {
        error("expected 'init' or 'uninit' in alloc");
        return recover();
      }
      advance();
      bool IsArray = false;
      if (peek().isKeyword("array")) {
        advance();
        IsArray = true;
      }
      if (!expect(TokenKind::Semi, "';'"))
        return recover();
      if (Fields <= 0 || Fields > (1 << 20)) {
        error("alloc has invalid field count");
        return;
      }
      Variable *Def = resolveOrCreateDef(DefName);
      if (!Def)
        return;
      std::string ObjName =
          CurFn->getName() + "." + DefName + "." + std::to_string(ObjCounter++);
      Builder->createAlloc(Def, R, static_cast<unsigned>(Fields), Initialized,
                           IsArray, ObjName);
      return;
    }

    // RHS: gep (constant or variable index).
    if (peek().isKeyword("gep")) {
      advance();
      Operand Base, Index;
      if (!parseOperand(Base))
        return recover();
      if (!expect(TokenKind::Comma, "','"))
        return recover();
      if (!parseOperand(Index))
        return recover();
      if (!expect(TokenKind::Semi, "';'"))
        return recover();
      if (Index.isConst() &&
          (Index.getConst() < 0 || Index.getConst() > (1 << 20))) {
        error("gep has invalid field index");
        return;
      }
      if (Index.isGlobal()) {
        error("gep index cannot be a global address");
        return;
      }
      Variable *Def = resolveOrCreateDef(DefName);
      if (!Def)
        return;
      Builder->createFieldAddr(Def, Base, Index);
      return;
    }

    // RHS: load.
    if (match(TokenKind::Star)) {
      Operand Ptr;
      if (!parseOperand(Ptr))
        return recover();
      if (!expect(TokenKind::Semi, "';'"))
        return recover();
      Variable *Def = resolveOrCreateDef(DefName);
      if (!Def)
        return;
      Builder->createLoad(Def, Ptr);
      return;
    }

    // RHS: call.
    if (check(TokenKind::Ident) && peek(1).is(TokenKind::LParen) &&
        M->findFunction(peek().Text)) {
      std::string Callee = advance().Text;
      Function *F = M->findFunction(Callee);
      advance(); // '('
      std::vector<Operand> Args;
      if (!check(TokenKind::RParen)) {
        do {
          Operand Arg;
          if (!parseOperand(Arg))
            return recover();
          Args.push_back(Arg);
        } while (match(TokenKind::Comma));
      }
      if (!expect(TokenKind::RParen, "')'"))
        return recover();
      if (!expect(TokenKind::Semi, "';'"))
        return recover();
      if (Args.size() != F->params().size()) {
        error("call to '" + Callee + "' passes " +
              std::to_string(Args.size()) + " args, expected " +
              std::to_string(F->params().size()));
        return;
      }
      Variable *Def = resolveOrCreateDef(DefName);
      if (!Def)
        return;
      Builder->createCall(Def, F, std::move(Args));
      return;
    }

    // RHS: operand (binop operand)?.
    Operand LHS;
    if (!parseOperand(LHS))
      return recover();
    BinOpcode Op;
    if (parseBinOpcode(Op)) {
      Operand RHS;
      if (!parseOperand(RHS))
        return recover();
      if (!expect(TokenKind::Semi, "';'"))
        return recover();
      Variable *Def = resolveOrCreateDef(DefName);
      if (!Def)
        return;
      Builder->createBinOp(Def, Op, LHS, RHS);
      return;
    }
    if (!expect(TokenKind::Semi, "';'"))
      return recover();
    Variable *Def = resolveOrCreateDef(DefName);
    if (!Def)
      return;
    Builder->createCopy(Def, LHS);
    return;
  }

  error("expected a statement, found " + foundDesc());
  recover();
}

void ParserImpl::parseFunctionBody(Function *F) {
  CurFn = F;
  Labels.clear();
  DefinedLabels.clear();
  LabelRefLines.clear();
  ContCounter = 0;

  BasicBlock *Entry = F->createBlock("entry");
  Builder->setInsertPoint(Entry);
  Terminated = false;

  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof) &&
         Errors.size() < 20)
    parseStatement();
  // The implicit return cites the closing brace.
  Builder->setCurrentLoc({peek().Line, peek().Col});
  expect(TokenKind::RBrace, "'}'");

  if (!Terminated)
    Builder->createRet(Operand());

  // Give every block created for an undefined forward label a body so the
  // verifier has a single failure mode: our diagnostic below.
  for (const auto &[Name, BB] : Labels) {
    if (DefinedLabels.count(Name))
      continue;
    Errors.push_back(std::to_string(LabelRefLines[Name]) +
                     ":1: undefined label '" + Name + "' in function '" +
                     F->getName() + "'");
    Builder->setInsertPoint(BB);
    Builder->createRet(Operand());
  }
  CurFn = nullptr;
}

void ParserImpl::parseTopLevel() {
  while (!check(TokenKind::Eof) && !check(TokenKind::Error) &&
         Errors.size() < 20) {
    if (peek().isKeyword("global")) {
      parseGlobalDecl(/*Declare=*/false);
      continue;
    }
    if (peek().isKeyword("func")) {
      advance();
      std::string Name = advance().Text; // validated in pass 1
      Function *F = M->findFunction(Name);
      // Skip the parameter list (created in pass 1).
      while (!check(TokenKind::LBrace) && !check(TokenKind::Eof))
        advance();
      if (!expect(TokenKind::LBrace, "'{'"))
        return;
      if (!F)
        return; // Pass 1 already diagnosed.
      parseFunctionBody(F);
      continue;
    }
    return; // Pass 1 already diagnosed.
  }
}

ParseResult ParserImpl::run() {
  ParseResult Result;
  if (!Tokens.empty() && Tokens.back().is(TokenKind::Error)) {
    const Token &T = Tokens.back();
    Result.Errors.push_back(std::to_string(T.Line) + ":" +
                            std::to_string(T.Col) + ": " + T.Text);
    return Result;
  }

  M = std::make_unique<ir::Module>();
  Builder = std::make_unique<ir::IRBuilder>(*M);

  scanTopLevel();
  if (Errors.empty())
    parseTopLevel();

  Result.Errors = std::move(Errors);
  if (!Result.Errors.empty())
    return Result;

  M->renumber();
  Result.M = std::move(M);
  return Result;
}

ParseResult parser::parseModule(std::string_view Source) {
  return ParserImpl(Source).run();
}

std::unique_ptr<ir::Module>
parser::parseModuleOrAbort(std::string_view Source) {
  ParseResult Result = parseModule(Source);
  if (!Result.succeeded()) {
    for (const std::string &E : Result.Errors)
      errs() << "parse error: " << E << '\n';
    std::abort();
  }
  ir::verifyModuleOrAbort(*Result.M);
  return std::move(Result.M);
}
