//===- vfg/VFG.h - Value-flow graph ------------------------------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The value-flow graph of Section 3.2: one node per SSA definition (both
/// top-level and address-taken) plus the two roots T (defined) and F
/// (undefined). An edge v -> w is a *dependency* edge: the value of v
/// depends on the value of w; undefinedness flows from F against the edge
/// direction. Interprocedural edges carry a call-site label so definedness
/// resolution can match calls and returns (Section 3.3).
///
/// Stores are translated with three update flavors (the paper's key
/// mechanism):
///  - strong:      the pointer uniquely targets one concrete cell; the old
///                 version is killed.
///  - semi-strong: the pointer uniquely targets one abstract heap object
///                 whose unique allocation site dominates the store; the
///                 edge to the old version is redirected to the version
///                 before the allocation, bypassing the allocation's F.
///  - weak:        everything else; old and new values merge.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_VFG_VFG_H
#define USHER_VFG_VFG_H

#include "ssa/MemorySSA.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace usher {

class raw_ostream;

namespace ir {
class Function;
class Instruction;
class Module;
class Variable;
} // namespace ir

namespace analysis {
class CallGraph;
class PointerAnalysis;
} // namespace analysis

namespace vfg {

/// Edge labels for context-sensitive reachability.
enum class EdgeKind : uint8_t {
  Direct, ///< Intraprocedural value flow.
  Call,   ///< Into a callee (actual -> formal); labeled with the call site.
  Ret     ///< Out of a callee (return -> result); labeled with the call site.
};

/// One dependency edge.
struct Edge {
  uint32_t Node;             ///< The node depended on / the dependent user.
  EdgeKind Kind;
  uint32_t CallSite = ~0u;   ///< Instruction id of the CallInst, if labeled.
};

/// How a particular store's chi was translated.
enum class UpdateKind : uint8_t { Strong, SemiStrong, Weak };

/// Why a node exists: which defining construct its dependency edges model.
/// Recorded by VFGBuilder at the point the node's defining edges are added;
/// the must-undef analysis keys its per-node transfer rules on this, and
/// the annotated dot dump prints it. Unknown marks nodes only ever
/// referenced as inputs (e.g. versions in unreachable code).
enum class NodeOrigin : uint8_t {
  Unknown,
  Root,          ///< The T/F roots.
  CopyDef,       ///< TL def of a copy (undef iff the source is).
  BinOpDef,      ///< TL def of a binop (undef if ANY operand is).
  FieldAddrDef,  ///< TL def of a gep (undef if ANY operand is).
  AllocPtr,      ///< TL def of an alloc (always defined).
  AllocChi,      ///< Memory chi at an allocation site (init root + old).
  CloneAllocChi, ///< Same, for a heap clone materialized at a call.
  StoreChiStrong,///< Store chi, strong update (value only).
  StoreChiSemi,  ///< Store chi, semi-strong update (value + bypass).
  StoreChiWeak,  ///< Store chi, weak update (value + old merge).
  LoadDef,       ///< TL def of a load (merge over the mus).
  CallResult,    ///< TL def of a call (merge over callee returns).
  CallModChi,    ///< Memory chi at a call (merge over callee returns).
  FormalParam,   ///< TL version 0 of a parameter (merge over call sites).
  FormalIn,      ///< Memory version 0 in a callee (merge over call sites).
  Phi,           ///< SSA phi, TL or memory (merge over incoming arms).
  EntryDef       ///< Version-0 node rooted at T/F at program start.
};

/// Short mnemonic for \p O (dot dumps and diagnostics).
const char *nodeOriginName(NodeOrigin O);

/// The value-flow graph of a whole program.
class VFG {
public:
  /// Ids of the two root nodes.
  static constexpr uint32_t RootT = 0;
  static constexpr uint32_t RootF = 1;

  /// Payload of a non-root node: a versioned SSA variable of one function.
  struct NodeData {
    const ir::Function *Fn = nullptr;
    ssa::VarKey Key{ssa::Space::TopLevel, 0};
    uint32_t Version = 0;
  };

  /// A use of a top-level variable at a critical operation.
  struct CriticalUse {
    const ir::Instruction *I;
    const ir::Variable *Var;
    uint32_t Node;
  };

  uint32_t numNodes() const { return static_cast<uint32_t>(Nodes.size()); }
  bool isRoot(uint32_t Id) const { return Id == RootT || Id == RootF; }
  const NodeData &node(uint32_t Id) const { return Nodes[Id]; }

  /// Dependency edges of \p Id (what its value is computed from).
  const std::vector<Edge> &deps(uint32_t Id) const { return Deps[Id]; }

  /// Provenance of \p Id (see NodeOrigin).
  NodeOrigin origin(uint32_t Id) const { return Origins[Id]; }

  /// Reverse edges of \p Id (who consumes its value).
  const std::vector<Edge> &users(uint32_t Id) const { return Users[Id]; }

  /// Id of an existing node; asserts that it exists.
  uint32_t nodeId(const ir::Function *Fn, ssa::VarKey Key,
                  uint32_t Version) const;

  /// Id of a node, or ~0u if it was never created.
  uint32_t findNode(const ir::Function *Fn, ssa::VarKey Key,
                    uint32_t Version) const;

  /// All uses of top-level variables at critical operations.
  const std::vector<CriticalUse> &criticalUses() const {
    return CriticalUses;
  }

  /// Update flavor of the chi for \p Loc at store \p I.
  UpdateKind storeUpdateKind(const ir::Instruction *I, uint32_t Loc) const;

  /// Number of semi-strong cuts performed, per allocation anchor object id
  /// (the S column of Table 1 aggregates this).
  const std::unordered_map<uint32_t, uint32_t> &semiStrongCuts() const {
    return SemiStrongCuts;
  }

  /// Counts of stores by update flavor (for Table 1's %SU / %WU).
  uint64_t numStrongStoreChis() const { return NumStrong; }
  uint64_t numSemiStrongStoreChis() const { return NumSemi; }
  uint64_t numWeakStoreChis() const { return NumWeak; }
  uint64_t numEdges() const { return NumEdges; }

  /// Coverage hook for the fuzzer's analysis-feature scheduler: a bitmask
  /// with bit static_cast<unsigned>(O) set for every NodeOrigin kind this
  /// graph contains. Which node kinds a program manufactures is a cheap,
  /// stable fingerprint of the VFG construction paths it exercised.
  uint32_t originMask() const;

  /// Per-node verdict for the annotated dot dump. Passed in by the caller
  /// (vfg cannot depend on core's Definedness/StaticDiagnosis types).
  enum class DotVerdict : uint8_t { None, Clean, May, Definite };

  /// Writes the graph in Graphviz dot syntax. When \p Verdicts is
  /// non-null (one entry per node) nodes are colored by verdict; node
  /// labels carry the provenance mnemonic and edges their kind and
  /// call-site labels, so witness paths can be eyeballed when debugging.
  void dumpDot(raw_ostream &OS,
               const std::vector<DotVerdict> *Verdicts = nullptr) const;

private:
  friend class VFGBuilder;

  struct NodeRef {
    const ir::Function *Fn;
    ssa::VarKey Key;
    uint32_t Version;
    bool operator==(const NodeRef &O) const {
      return Fn == O.Fn && Key == O.Key && Version == O.Version;
    }
  };
  struct NodeRefHash {
    size_t operator()(const NodeRef &R) const {
      size_t H = std::hash<const void *>()(R.Fn);
      H ^= ssa::VarKeyHash()(R.Key) + 0x9E3779B9 + (H << 6) + (H >> 2);
      H ^= R.Version + 0x9E3779B9 + (H << 6) + (H >> 2);
      return H;
    }
  };

  std::vector<NodeData> Nodes;
  std::vector<NodeOrigin> Origins;
  std::vector<std::vector<Edge>> Deps;
  std::vector<std::vector<Edge>> Users;
  std::unordered_map<NodeRef, uint32_t, NodeRefHash> NodeIds;
  std::vector<CriticalUse> CriticalUses;
  std::unordered_map<uint64_t, UpdateKind> StoreKinds; // (instId<<32)|loc
  std::unordered_map<uint32_t, uint32_t> SemiStrongCuts;
  uint64_t NumStrong = 0, NumSemi = 0, NumWeak = 0, NumEdges = 0;
};

/// Options controlling VFG construction.
struct VFGOptions {
  /// Apply the semi-strong update rule of Section 3.2.
  bool SemiStrongUpdates = true;
  /// Apply traditional strong updates at stores.
  bool StrongUpdates = true;
};

/// Builds the VFG for a module from its memory SSA form.
class VFGBuilder {
public:
  VFGBuilder(const ir::Module &M, const ssa::MemorySSA &SSA,
             const analysis::PointerAnalysis &PA,
             const analysis::CallGraph &CG, VFGOptions Opts = VFGOptions())
      : M(M), SSA(SSA), PA(PA), CG(&CG), Opts(Opts) {}

  /// Constructs the whole-program VFG.
  VFG build();

private:
  uint32_t getNode(const ir::Function *Fn, ssa::VarKey Key, uint32_t Version);
  void addDep(uint32_t From, uint32_t To, EdgeKind Kind,
              uint32_t CallSite = ~0u);
  void setOrigin(uint32_t Node, NodeOrigin O);
  uint32_t operandNode(const ir::Function *Fn, const ssa::InstSSA &Info,
                       const ir::Operand &Op);

  void buildFunction(const ir::Function &F);
  void buildInstruction(const ir::Function &F, const ir::Instruction &I,
                        const ssa::InstSSA &Info);
  void buildStoreChis(const ir::Function &F, const ir::StoreInst &St,
                      const ssa::InstSSA &Info);
  void buildCall(const ir::Function &F, const ir::CallInst &Call,
                 const ssa::InstSSA &Info);

  /// True if bypassing the chi chain from \p FromVersion back to the
  /// allocation anchor's chi is sound (every bypassed def writes the
  /// current instance); see the semi-strong discussion in DESIGN.md.
  bool safeBypass(const ssa::FunctionSSA &FS, uint32_t Loc,
                  uint32_t FromVersion, uint32_t AnchorNewVersion,
                  const ir::Instruction *Anchor);

  const ir::Module &M;
  const ssa::MemorySSA &SSA;
  const analysis::PointerAnalysis &PA;
  const analysis::CallGraph *CG;
  VFGOptions Opts;
  VFG G;
};

} // namespace vfg
} // namespace usher

#endif // USHER_VFG_VFG_H
