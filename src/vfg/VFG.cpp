//===- vfg/VFG.cpp - Value-flow graph construction -------------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "vfg/VFG.h"

#include "analysis/CallGraph.h"
#include "analysis/PointerAnalysis.h"
#include "ir/IR.h"
#include "support/RawStream.h"

#include <cassert>
#include <unordered_set>

using namespace usher;
using namespace usher::vfg;
using namespace usher::ir;
using ssa::ChiKind;
using ssa::DefDesc;
using ssa::FunctionSSA;
using ssa::InstSSA;
using ssa::MemDef;
using ssa::Space;
using ssa::VarKey;

//===----------------------------------------------------------------------===//
// VFG queries
//===----------------------------------------------------------------------===//

uint32_t VFG::nodeId(const Function *Fn, VarKey Key, uint32_t Version) const {
  uint32_t Id = findNode(Fn, Key, Version);
  assert(Id != ~0u && "VFG node does not exist");
  return Id;
}

uint32_t VFG::findNode(const Function *Fn, VarKey Key,
                       uint32_t Version) const {
  auto It = NodeIds.find(NodeRef{Fn, Key, Version});
  return It == NodeIds.end() ? ~0u : It->second;
}

uint32_t VFG::originMask() const {
  uint32_t Mask = 0;
  for (NodeOrigin O : Origins)
    Mask |= 1u << static_cast<unsigned>(O);
  return Mask;
}

UpdateKind VFG::storeUpdateKind(const Instruction *I, uint32_t Loc) const {
  uint64_t Key = (static_cast<uint64_t>(I->getId()) << 32) | Loc;
  auto It = StoreKinds.find(Key);
  assert(It != StoreKinds.end() && "no chi recorded for this store/loc");
  return It->second;
}

const char *vfg::nodeOriginName(NodeOrigin O) {
  switch (O) {
  case NodeOrigin::Unknown:
    return "?";
  case NodeOrigin::Root:
    return "root";
  case NodeOrigin::CopyDef:
    return "copy";
  case NodeOrigin::BinOpDef:
    return "binop";
  case NodeOrigin::FieldAddrDef:
    return "gep";
  case NodeOrigin::AllocPtr:
    return "allocptr";
  case NodeOrigin::AllocChi:
    return "allocchi";
  case NodeOrigin::CloneAllocChi:
    return "clonechi";
  case NodeOrigin::StoreChiStrong:
    return "store.s";
  case NodeOrigin::StoreChiSemi:
    return "store.ss";
  case NodeOrigin::StoreChiWeak:
    return "store.w";
  case NodeOrigin::LoadDef:
    return "load";
  case NodeOrigin::CallResult:
    return "callres";
  case NodeOrigin::CallModChi:
    return "callmod";
  case NodeOrigin::FormalParam:
    return "param";
  case NodeOrigin::FormalIn:
    return "formalin";
  case NodeOrigin::Phi:
    return "phi";
  case NodeOrigin::EntryDef:
    return "entry";
  }
  return "?";
}

void VFG::dumpDot(raw_ostream &OS,
                  const std::vector<DotVerdict> *Verdicts) const {
  OS << "digraph VFG {\n  rankdir=BT;\n";
  for (uint32_t Id = 0; Id != numNodes(); ++Id) {
    OS << "  n" << Id << " [label=\"";
    if (Id == RootT) {
      OS << "T";
    } else if (Id == RootF) {
      OS << "F";
    } else {
      const NodeData &N = Nodes[Id];
      OS << N.Fn->getName() << ':';
      if (N.Key.Sp == Space::TopLevel)
        OS << "tl" << N.Key.Id;
      else
        OS << "mem" << N.Key.Id;
      OS << 'v' << N.Version;
      if (Origins[Id] != NodeOrigin::Unknown)
        OS << "\\n" << nodeOriginName(Origins[Id]);
    }
    OS << '"';
    // Memory-space nodes render as boxes so the two SSA spaces are
    // visually distinct; verdicts color the node.
    if (!isRoot(Id) && Nodes[Id].Key.Sp == Space::Memory)
      OS << ", shape=box";
    if (Verdicts) {
      switch ((*Verdicts)[Id]) {
      case DotVerdict::None:
        break;
      case DotVerdict::Clean:
        OS << ", style=filled, fillcolor=palegreen";
        break;
      case DotVerdict::May:
        OS << ", style=filled, fillcolor=khaki";
        break;
      case DotVerdict::Definite:
        OS << ", style=filled, fillcolor=lightcoral";
        break;
      }
    }
    OS << "];\n";
  }
  for (uint32_t Id = 0; Id != numNodes(); ++Id) {
    for (const Edge &E : Deps[Id]) {
      OS << "  n" << Id << " -> n" << E.Node;
      if (E.Kind == EdgeKind::Call)
        OS << " [color=blue, label=\"call@" << E.CallSite << "\"]";
      else if (E.Kind == EdgeKind::Ret)
        OS << " [color=red, label=\"ret@" << E.CallSite << "\"]";
      OS << ";\n";
    }
  }
  OS << "}\n";
}

//===----------------------------------------------------------------------===//
// VFGBuilder
//===----------------------------------------------------------------------===//

uint32_t VFGBuilder::getNode(const Function *Fn, VarKey Key,
                             uint32_t Version) {
  VFG::NodeRef Ref{Fn, Key, Version};
  auto It = G.NodeIds.find(Ref);
  if (It != G.NodeIds.end())
    return It->second;
  uint32_t Id = static_cast<uint32_t>(G.Nodes.size());
  G.Nodes.push_back({Fn, Key, Version});
  G.Origins.push_back(NodeOrigin::Unknown);
  G.Deps.emplace_back();
  G.Users.emplace_back();
  G.NodeIds.emplace(Ref, Id);
  return Id;
}

void VFGBuilder::setOrigin(uint32_t Node, NodeOrigin O) {
  G.Origins[Node] = O;
}

void VFGBuilder::addDep(uint32_t From, uint32_t To, EdgeKind Kind,
                        uint32_t CallSite) {
  for (const Edge &E : G.Deps[From])
    if (E.Node == To && E.Kind == Kind && E.CallSite == CallSite)
      return;
  G.Deps[From].push_back({To, Kind, CallSite});
  G.Users[To].push_back({From, Kind, CallSite});
  ++G.NumEdges;
}

uint32_t VFGBuilder::operandNode(const Function *Fn, const InstSSA &Info,
                                 const Operand &Op) {
  if (Op.isConst() || Op.isGlobal())
    return VFG::RootT; // Constants and global addresses are always defined.
  assert(Op.isVar() && "unexpected operand kind");
  for (const ssa::TLUse &Use : Info.TLUses)
    if (Use.Var == Op.getVar())
      return getNode(Fn, {Space::TopLevel, Op.getVar()->getId()},
                     Use.Version);
  assert(false && "operand variable has no recorded SSA use");
  return VFG::RootT;
}

/// Returns true when the stored-through pointer's value is a phi-free
/// chain of copies and field-address computations from \p Anchor's def:
/// the pointer then necessarily targets the instance allocated by the
/// *most recent* execution of the anchor (geps change the field, never
/// the instance; the chi's location already identifies the field).
static bool ptrDerivedFromAnchor(const FunctionSSA &FS, const Variable *Var,
                                 uint32_t Version,
                                 const Instruction *Anchor) {
  for (unsigned Steps = 0; Steps < 64; ++Steps) {
    const DefDesc &Desc = FS.defOf({Space::TopLevel, Var->getId()}, Version);
    if (Desc.K != DefDesc::Kind::Inst)
      return false;
    if (Desc.I == Anchor)
      return true;
    Operand Next;
    if (const auto *C = dyn_cast<CopyInst>(Desc.I))
      Next = C->getSrc();
    else if (const auto *G = dyn_cast<FieldAddrInst>(Desc.I))
      Next = G->getBase();
    else
      return false;
    if (!Next.isVar())
      return false;
    const InstSSA *StepInfo = FS.instInfo(Desc.I);
    assert(StepInfo && "chain step in reachable code lacks SSA info");
    Var = Next.getVar();
    Version = ~0u;
    for (const ssa::TLUse &Use : StepInfo->TLUses)
      if (Use.Var == Var)
        Version = Use.Version;
    assert(Version != ~0u && "chain source has no recorded use");
  }
  return false;
}

bool VFGBuilder::safeBypass(const FunctionSSA &FS, uint32_t Loc,
                            uint32_t FromVersion, uint32_t AnchorNewVersion,
                            const Instruction *Anchor) {
  VarKey Key{Space::Memory, Loc};
  std::unordered_set<uint32_t> Visited;
  std::vector<uint32_t> Work{FromVersion};
  while (!Work.empty()) {
    uint32_t V = Work.back();
    Work.pop_back();
    if (V == AnchorNewVersion || !Visited.insert(V).second)
      continue;
    const DefDesc &Desc = FS.defOf(Key, V);
    switch (Desc.K) {
    case DefDesc::Kind::Entry:
      return false; // Escaped above the anchor: should not happen when the
                    // anchor dominates, but be conservative.
    case DefDesc::Kind::Phi: {
      const ssa::PhiNode &Phi = FS.phisIn(Desc.PhiBlock)[Desc.PhiIdx];
      for (const auto &[Pred, InVersion] : Phi.Incoming)
        Work.push_back(InVersion);
      break;
    }
    case DefDesc::Kind::Inst: {
      const auto *St = dyn_cast<StoreInst>(Desc.I);
      if (!St)
        return false; // A call or another allocation intervenes.
      // The intervening store must itself definitely write the current
      // instance, so that our store's bypass cannot hide its value.
      const std::vector<uint32_t> &Pts = PA.pointsTo(St->getPtr());
      if (Pts.size() != 1 || Pts[0] != Loc)
        return false;
      if (!St->getPtr().isVar())
        return false;
      const InstSSA *StInfo = FS.instInfo(St);
      uint32_t PtrVersion = ~0u;
      for (const ssa::TLUse &Use : StInfo->TLUses)
        if (Use.Var == St->getPtr().getVar())
          PtrVersion = Use.Version;
      if (!ptrDerivedFromAnchor(FS, St->getPtr().getVar(), PtrVersion,
                                Anchor))
        return false;
      // Continue above this store's chi.
      for (const MemDef &Chi : StInfo->Chis)
        if (Chi.Loc == Loc)
          Work.push_back(Chi.OldVersion);
      break;
    }
    }
  }
  return true;
}

void VFGBuilder::buildStoreChis(const Function &F, const StoreInst &St,
                                const InstSSA &Info) {
  const FunctionSSA &FS = SSA.get(&F);
  const std::vector<uint32_t> &Pts = PA.pointsTo(St.getPtr());
  uint32_t ValueNode = operandNode(&F, Info, St.getValue());

  for (const MemDef &Chi : Info.Chis) {
    assert(Chi.Kind == ChiKind::Store && "non-store chi at a store");
    uint32_t NewNode = getNode(&F, {Space::Memory, Chi.Loc}, Chi.NewVersion);
    setOrigin(NewNode, NodeOrigin::StoreChiWeak);
    addDep(NewNode, ValueNode, EdgeKind::Direct);

    const MemObject *Obj = PA.location(Chi.Loc).Obj;
    bool Singleton = Pts.size() == 1 && !PA.isCollapsedLoc(Chi.Loc);
    uint64_t StatKey = (static_cast<uint64_t>(St.getId()) << 32) | Chi.Loc;

    // Traditional strong update: one concrete cell.
    if (Opts.StrongUpdates && Singleton && !Obj->isHeap()) {
      bool OneInstance = Obj->isGlobal();
      if (Obj->isStack()) {
        const Function *AllocFn = Obj->getAllocSite()
                                      ? Obj->getAllocSite()
                                            ->getParent()
                                            ->getParent()
                                      : nullptr;
        OneInstance = AllocFn && !CG->isRecursive(AllocFn);
      }
      if (OneInstance) {
        G.StoreKinds[StatKey] = UpdateKind::Strong;
        setOrigin(NewNode, NodeOrigin::StoreChiStrong);
        ++G.NumStrong;
        continue; // Old version killed: no edge to Chi.OldVersion.
      }
    }

    // Semi-strong update: singleton abstract heap object whose unique
    // allocation anchor dominates this store, the pointer provably holds
    // the freshest instance, and the bypassed chain only writes that
    // instance.
    if (Opts.SemiStrongUpdates && Singleton && Obj->isHeap()) {
      Instruction *Anchor = Obj->getAllocSite();
      if (Anchor && Anchor->getParent()->getParent() == &F &&
          Anchor->getDef() && FS.getDomTree().dominates(Anchor, &St) &&
          St.getPtr().isVar()) {
        uint32_t PtrVersion = ~0u;
        for (const ssa::TLUse &Use : Info.TLUses)
          if (Use.Var == St.getPtr().getVar())
            PtrVersion = Use.Version;
        const InstSSA *AnchorInfo = FS.instInfo(Anchor);
        const MemDef *AnchorChi = nullptr;
        for (const MemDef &AChi : AnchorInfo->Chis)
          if (AChi.Loc == Chi.Loc)
            AnchorChi = &AChi;
        if (AnchorChi &&
            ptrDerivedFromAnchor(FS, St.getPtr().getVar(), PtrVersion,
                                 Anchor) &&
            safeBypass(FS, Chi.Loc, Chi.OldVersion, AnchorChi->NewVersion,
                       Anchor)) {
          // Redirect the old-version edge to the version *before* the
          // allocation, bypassing the allocation's undefinedness.
          uint32_t BypassNode =
              getNode(&F, {Space::Memory, Chi.Loc}, AnchorChi->OldVersion);
          addDep(NewNode, BypassNode, EdgeKind::Direct);
          G.StoreKinds[StatKey] = UpdateKind::SemiStrong;
          setOrigin(NewNode, NodeOrigin::StoreChiSemi);
          ++G.NumSemi;
          ++G.SemiStrongCuts[Obj->getId()];
          continue;
        }
      }
    }

    // Weak update: merge with the previous version.
    uint32_t OldNode = getNode(&F, {Space::Memory, Chi.Loc}, Chi.OldVersion);
    addDep(NewNode, OldNode, EdgeKind::Direct);
    G.StoreKinds[StatKey] = UpdateKind::Weak;
    ++G.NumWeak;
  }
}

void VFGBuilder::buildCall(const Function &F, const CallInst &Call,
                           const InstSSA &Info) {
  const Function *Callee = Call.getCallee();
  const FunctionSSA &CalleeSSA = SSA.get(Callee);
  uint32_t CallSite = Call.getId();

  // Actual -> formal for top-level parameters.
  const auto &Params = Callee->params();
  for (size_t Idx = 0; Idx != Params.size(); ++Idx) {
    uint32_t Formal =
        getNode(Callee, {Space::TopLevel, Params[Idx]->getId()}, 0);
    setOrigin(Formal, NodeOrigin::FormalParam);
    uint32_t Actual = operandNode(&F, Info, Call.getArgs()[Idx]);
    addDep(Formal, Actual, EdgeKind::Call, CallSite);
  }

  // Collect the callee's reachable returns once.
  std::vector<std::pair<const RetInst *, const InstSSA *>> Rets;
  for (const auto &BB : Callee->blocks())
    for (const auto &I : BB->instructions())
      if (const auto *R = dyn_cast<RetInst>(I.get()))
        if (const InstSSA *RInfo = CalleeSSA.instInfo(R))
          Rets.push_back({R, RInfo});

  // Return value -> call result.
  if (Call.getDef()) {
    uint32_t Result = getNode(&F, {Space::TopLevel, Call.getDef()->getId()},
                              Info.TLDefVersion);
    setOrigin(Result, NodeOrigin::CallResult);
    for (const auto &[R, RInfo] : Rets) {
      if (R->getValue().isNone()) {
        // Capturing the result of a void return yields an undefined value.
        addDep(Result, VFG::RootF, EdgeKind::Ret, CallSite);
      } else {
        addDep(Result, operandNode(Callee, *RInfo, R->getValue()),
               EdgeKind::Ret, CallSite);
      }
    }
  }

  // Version of every location visible just before the call.
  std::unordered_map<uint32_t, uint32_t> VersionAtCall;
  for (const ssa::MemUse &Mu : Info.Mus)
    VersionAtCall[Mu.Loc] = Mu.Version;
  for (const MemDef &Chi : Info.Chis)
    VersionAtCall.emplace(Chi.Loc, Chi.OldVersion);

  // Caller state -> callee virtual input parameters. Wrapper origins have
  // no caller-side version (they are cloned away) and take no input.
  for (uint32_t Loc : CalleeSSA.formalIns()) {
    auto It = VersionAtCall.find(Loc);
    if (It == VersionAtCall.end())
      continue;
    uint32_t FormalIn = getNode(Callee, {Space::Memory, Loc}, 0);
    setOrigin(FormalIn, NodeOrigin::FormalIn);
    addDep(FormalIn, getNode(&F, {Space::Memory, Loc}, It->second),
           EdgeKind::Call, CallSite);
  }

  // Chis at the call: clone allocations behave like allocation sites; mod
  // chis receive the callee's virtual output parameters.
  const Function *OwnFn = &F;
  for (const MemDef &Chi : Info.Chis) {
    uint32_t NewNode =
        getNode(OwnFn, {Space::Memory, Chi.Loc}, Chi.NewVersion);
    if (Chi.Kind == ChiKind::CloneAlloc) {
      const MemObject *Clone = PA.location(Chi.Loc).Obj;
      setOrigin(NewNode, NodeOrigin::CloneAllocChi);
      addDep(NewNode, Clone->isInitialized() ? VFG::RootT : VFG::RootF,
             EdgeKind::Direct);
      addDep(NewNode,
             getNode(OwnFn, {Space::Memory, Chi.Loc}, Chi.OldVersion),
             EdgeKind::Direct);
      continue;
    }
    assert(Chi.Kind == ChiKind::CallMod && "unexpected chi kind at call");
    setOrigin(NewNode, NodeOrigin::CallModChi);
    for (const auto &[R, RInfo] : Rets) {
      for (const ssa::MemUse &Mu : RInfo->Mus) {
        if (Mu.Loc == Chi.Loc) {
          addDep(NewNode, getNode(Callee, {Space::Memory, Chi.Loc},
                                  Mu.Version),
                 EdgeKind::Ret, CallSite);
          break;
        }
      }
    }
  }
}

void VFGBuilder::buildInstruction(const Function &F, const Instruction &I,
                                  const InstSSA &Info) {
  switch (I.getKind()) {
  case Instruction::IKind::Copy: {
    const auto *C = cast<CopyInst>(&I);
    uint32_t Def = getNode(&F, {Space::TopLevel, C->getDef()->getId()},
                           Info.TLDefVersion);
    setOrigin(Def, NodeOrigin::CopyDef);
    addDep(Def, operandNode(&F, Info, C->getSrc()), EdgeKind::Direct);
    break;
  }
  case Instruction::IKind::BinOp: {
    const auto *B = cast<BinOpInst>(&I);
    uint32_t Def = getNode(&F, {Space::TopLevel, B->getDef()->getId()},
                           Info.TLDefVersion);
    setOrigin(Def, NodeOrigin::BinOpDef);
    addDep(Def, operandNode(&F, Info, B->getLHS()), EdgeKind::Direct);
    addDep(Def, operandNode(&F, Info, B->getRHS()), EdgeKind::Direct);
    break;
  }
  case Instruction::IKind::FieldAddr: {
    const auto *FA = cast<FieldAddrInst>(&I);
    uint32_t Def = getNode(&F, {Space::TopLevel, FA->getDef()->getId()},
                           Info.TLDefVersion);
    setOrigin(Def, NodeOrigin::FieldAddrDef);
    addDep(Def, operandNode(&F, Info, FA->getBase()), EdgeKind::Direct);
    addDep(Def, operandNode(&F, Info, FA->getIndex()), EdgeKind::Direct);
    break;
  }
  case Instruction::IKind::Alloc: {
    const auto *A = cast<AllocInst>(&I);
    // The pointer itself is defined; each field of the fresh object is
    // defined (alloc_T) or undefined (alloc_F), merged with the other
    // instances of the abstract object.
    uint32_t Def = getNode(&F, {Space::TopLevel, A->getDef()->getId()},
                           Info.TLDefVersion);
    setOrigin(Def, NodeOrigin::AllocPtr);
    addDep(Def, VFG::RootT, EdgeKind::Direct);
    uint32_t InitRoot =
        A->getObject()->isInitialized() ? VFG::RootT : VFG::RootF;
    for (const MemDef &Chi : Info.Chis) {
      uint32_t NewNode =
          getNode(&F, {Space::Memory, Chi.Loc}, Chi.NewVersion);
      setOrigin(NewNode, NodeOrigin::AllocChi);
      addDep(NewNode, InitRoot, EdgeKind::Direct);
      addDep(NewNode, getNode(&F, {Space::Memory, Chi.Loc}, Chi.OldVersion),
             EdgeKind::Direct);
    }
    break;
  }
  case Instruction::IKind::Load: {
    const auto *L = cast<LoadInst>(&I);
    uint32_t Def = getNode(&F, {Space::TopLevel, L->getDef()->getId()},
                           Info.TLDefVersion);
    setOrigin(Def, NodeOrigin::LoadDef);
    for (const ssa::MemUse &Mu : Info.Mus)
      addDep(Def, getNode(&F, {Space::Memory, Mu.Loc}, Mu.Version),
             EdgeKind::Direct);
    if (L->getPtr().isVar())
      G.CriticalUses.push_back(
          {&I, L->getPtr().getVar(),
           operandNode(&F, Info, L->getPtr())});
    break;
  }
  case Instruction::IKind::Store: {
    const auto *St = cast<StoreInst>(&I);
    buildStoreChis(F, *St, Info);
    if (St->getPtr().isVar())
      G.CriticalUses.push_back(
          {&I, St->getPtr().getVar(),
           operandNode(&F, Info, St->getPtr())});
    break;
  }
  case Instruction::IKind::Call:
    buildCall(F, *cast<CallInst>(&I), Info);
    break;
  case Instruction::IKind::CondBr: {
    const auto *B = cast<CondBrInst>(&I);
    if (B->getCond().isVar())
      G.CriticalUses.push_back(
          {&I, B->getCond().getVar(),
           operandNode(&F, Info, B->getCond())});
    break;
  }
  case Instruction::IKind::Goto:
  case Instruction::IKind::Ret:
    // Returns contribute edges at their call sites; mus at returns are
    // read by buildCall through the callee's SSA info.
    break;
  }
}

void VFGBuilder::buildFunction(const Function &F) {
  const FunctionSSA &FS = SSA.get(&F);

  for (const auto &BB : F.blocks()) {
    if (!FS.getCFG().isReachable(BB->getId()))
      continue;
    // Phi nodes.
    for (const ssa::PhiNode &Phi : FS.phisIn(BB.get())) {
      uint32_t Result = getNode(&F, Phi.Var, Phi.ResultVersion);
      setOrigin(Result, NodeOrigin::Phi);
      for (const auto &[Pred, Version] : Phi.Incoming)
        addDep(Result, getNode(&F, Phi.Var, Version), EdgeKind::Direct);
    }
    for (const auto &I : BB->instructions()) {
      const InstSSA *Info = FS.instInfo(I.get());
      assert(Info && "reachable instruction lacks SSA info");
      buildInstruction(F, *I, *Info);
    }
  }
}

VFG VFGBuilder::build() {
  // Nodes 0 and 1 are the T and F roots.
  G.Nodes.resize(2);
  G.Origins.resize(2, NodeOrigin::Root);
  G.Deps.resize(2);
  G.Users.resize(2);

  for (const auto &F : M.functions())
    buildFunction(*F);

  // Entry (version 0) nodes referenced anywhere now get their root edges.
  // Formal parameters and virtual input parameters already received call
  // edges above; everything else is rooted here.
  const Function *Main = M.findFunction("main");
  for (uint32_t Id = 2; Id != G.numNodes(); ++Id) {
    const VFG::NodeData &N = G.Nodes[Id];
    if (N.Version != 0)
      continue;
    if (N.Key.Sp == Space::TopLevel) {
      const Variable *V =
          N.Fn->variables()[N.Key.Id].get();
      if (!V->isParam()) {
        setOrigin(Id, NodeOrigin::EntryDef);
        addDep(Id, VFG::RootF, EdgeKind::Direct);
      }
      // Parameters: call edges only; a never-called function stays T.
    } else if (N.Fn == Main) {
      // Program start: globals are defined iff declared `init`; stack and
      // heap locations have no live instances yet, hence no undefined
      // value can be read from them before their allocation runs.
      const MemObject *Obj = PA.location(N.Key.Id).Obj;
      setOrigin(Id, NodeOrigin::EntryDef);
      if (Obj->isGlobal())
        addDep(Id, Obj->isInitialized() ? VFG::RootT : VFG::RootF,
               EdgeKind::Direct);
      else
        addDep(Id, VFG::RootT, EdgeKind::Direct);
    }
  }
  return std::move(G);
}
