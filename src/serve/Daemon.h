//===- serve/Daemon.h - usher-serve event loop ------------------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The socket-facing half of usher-serve: a poll()-based event loop over
/// an AF_UNIX listening socket, with analysis requests dispatched onto
/// the PR 5 ThreadPool. The loop owns all connection state; workers only
/// run Session::handle and post the finished reply to an outbox the loop
/// drains through a self-pipe wakeup, so no fd is ever touched from two
/// threads.
///
/// Robustness properties (each one is exercised by a tier-1 or
/// serve_fault test):
///
///  - *Overload shedding*: at most QueueLimit analysis requests are
///    admitted concurrently; past the watermark the daemon replies
///    RETRY_AFTER with a backoff hint instead of queueing without bound.
///    Status/Ping/Shutdown bypass admission, so an overloaded daemon
///    stays observable and stoppable.
///
///  - *Request isolation*: a malformed body is answered with an Error
///    reply; a framing violation closes only that connection; an
///    injected parse-allocation failure is caught and answered. The loop
///    itself never dies on peer input.
///
///  - *Graceful shutdown*: SIGINT/SIGTERM (via requestStop(), which is
///    async-signal-safe) or a Shutdown request stop admission, let
///    in-flight work finish, flush pending replies, and return 0.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_SERVE_DAEMON_H
#define USHER_SERVE_DAEMON_H

#include "serve/Protocol.h"
#include "serve/Session.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace usher {

class ThreadPool;

namespace serve {

struct DaemonOptions {
  std::string SocketPath;
  std::string SnapshotDir; ///< Empty = in-memory snapshots.
  unsigned Workers = 2;    ///< Analysis worker threads.
  /// Admission watermark: analysis requests in flight (queued or running)
  /// before the daemon sheds. 0 sheds every analysis request — used by
  /// the overload tests.
  uint64_t QueueLimit = 8;
  /// Backoff hint carried in RETRY_AFTER replies.
  uint32_t RetryAfterMs = 50;
  /// Definedness engine for analysis requests (--engine=global|summary).
  core::EngineKind Engine = core::EngineKind::Global;
};

class Daemon {
public:
  explicit Daemon(DaemonOptions Opts);
  ~Daemon();

  Daemon(const Daemon &) = delete;
  Daemon &operator=(const Daemon &) = delete;

  /// Binds and listens. Returns false (with a message on stderr) when the
  /// socket cannot be created.
  bool listen();

  /// Runs the event loop until a Shutdown request or requestStop().
  /// Returns 0 on clean shutdown.
  int run();

  /// Requests a graceful stop. Async-signal-safe: only writes one byte
  /// to the self-pipe.
  void requestStop();

  Session &session() { return *Sess; }

private:
  struct Conn;

  void acceptReady();
  void connReadable(Conn &C);
  void connWritable(Conn &C);
  /// Queues \p Bytes on \p C and flushes what the socket accepts now.
  void sendBytes(Conn &C, std::string Bytes);
  /// Handles one decoded frame body from \p C; returns false when the
  /// connection must be closed (framing violation).
  bool handleFrame(Conn &C, const std::string &Body);
  /// Dispatches an admitted analysis request onto the pool.
  void dispatch(Conn &C, Request Rq);
  void drainOutbox();
  void closeConn(Conn &C);
  DaemonStatus daemonStatus() const;

  DaemonOptions Opts;
  std::unique_ptr<Session> Sess;
  std::unique_ptr<ThreadPool> Pool;

  int ListenFd = -1;
  int WakePipe[2] = {-1, -1};
  std::vector<std::unique_ptr<Conn>> Conns;
  bool Stopping = false;      ///< Stop accepted; draining in-flight work.
  uint64_t NextConnId = 1;

  /// Finished replies posted by workers, drained by the loop.
  struct Done {
    uint64_t ConnId;
    std::string Bytes;  ///< Already framed.
    bool FaultEligible; ///< Subject to the socket-drop-reply fault site.
  };
  std::mutex OutboxMtx;
  std::vector<Done> Outbox;

  std::atomic<uint64_t> InFlight{0};
  std::atomic<uint64_t> Shed{0};
  std::atomic<uint64_t> DroppedReplies{0};
  std::atomic<uint64_t> ProtocolErrors{0};
};

} // namespace serve
} // namespace usher

#endif // USHER_SERVE_DAEMON_H
