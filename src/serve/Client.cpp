//===- serve/Client.cpp - usher-serve client library -----------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace usher;
using namespace usher::serve;

const char *serve::callOutcomeName(CallOutcome O) {
  switch (O) {
  case CallOutcome::Ok:
    return "ok";
  case CallOutcome::ConnectError:
    return "connect-error";
  case CallOutcome::ProtocolError:
    return "protocol-error";
  case CallOutcome::Dropped:
    return "dropped";
  case CallOutcome::ShedExhausted:
    return "shed-exhausted";
  case CallOutcome::Timeout:
    return "timeout";
  }
  return "unknown";
}

ServeClient::ServeClient(ClientOptions O)
    : Opts(std::move(O)), RngState(Opts.JitterSeed) {}

namespace {

/// SplitMix64 step; deterministic jitter source.
uint64_t nextRand(uint64_t &State) {
  State += 0x9E3779B97F4A7C15ull;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

struct FdCloser {
  int Fd;
  ~FdCloser() {
    if (Fd >= 0)
      ::close(Fd);
  }
};

} // namespace

CallOutcome ServeClient::attempt(const Request &Rq, Reply &Out,
                                 std::string &Err) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::strerror(errno);
    return CallOutcome::ConnectError;
  }
  FdCloser Closer{Fd};
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long";
    return CallOutcome::ConnectError;
  }
  std::strncpy(Addr.sun_path, Opts.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Err = std::strerror(errno);
    return CallOutcome::ConnectError;
  }

  const std::string Framed = frame(encodeRequest(Rq));
  size_t Off = 0;
  while (Off < Framed.size()) {
    ssize_t N = ::send(Fd, Framed.data() + Off, Framed.size() - Off,
                       MSG_NOSIGNAL);
    if (N <= 0) {
      Err = "send failed";
      return CallOutcome::Dropped;
    }
    Off += static_cast<size_t>(N);
  }

  FrameReader Reader;
  std::string Body;
  char Buf[16384];
  const auto Deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(Opts.ReceiveTimeoutMs);
  for (;;) {
    if (Opts.ReceiveTimeoutMs) {
      auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      Deadline - std::chrono::steady_clock::now())
                      .count();
      if (Left <= 0) {
        Err = "timed out waiting for reply";
        return CallOutcome::Timeout;
      }
      pollfd P{Fd, POLLIN, 0};
      int PR = ::poll(&P, 1, static_cast<int>(Left));
      if (PR == 0) {
        Err = "timed out waiting for reply";
        return CallOutcome::Timeout;
      }
      if (PR < 0 && errno != EINTR) {
        Err = std::strerror(errno);
        return CallOutcome::Dropped;
      }
    }
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N == 0) {
      // The daemon (or an injected socket-drop fault) closed before the
      // reply was complete.
      Err = "connection closed before reply";
      return CallOutcome::Dropped;
    }
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Err = std::strerror(errno);
      return CallOutcome::Dropped;
    }
    Reader.append(Buf, static_cast<size_t>(N));
    FrameReader::Result R = Reader.next(Body, &Err);
    if (R == FrameReader::Result::Corrupt)
      return CallOutcome::ProtocolError;
    if (R == FrameReader::Result::Frame)
      break;
  }
  if (!decodeReply(Body, Out, &Err))
    return CallOutcome::ProtocolError;
  return CallOutcome::Ok;
}

CallResult ServeClient::call(const Request &Rq) {
  CallResult Res;
  uint32_t BackoffMs = Opts.InitialBackoffMs;
  for (unsigned Attempt = 0; Attempt <= Opts.MaxRetries; ++Attempt) {
    ++Res.Attempts;
    Reply Rp;
    std::string Err;
    CallOutcome O = attempt(Rq, Rp, Err);
    // Transient transport failures — the daemon restarting (connect
    // refused) or a connection dying mid-reply — are retried with the
    // same backoff as shedding. Protocol corruption and a blown receive
    // deadline are final: retrying cannot fix an incompatible peer, and
    // the deadline exists precisely to bound total wait.
    bool Transient = O == CallOutcome::Dropped || O == CallOutcome::ConnectError;
    if (O != CallOutcome::Ok && !Transient) {
      Res.Outcome = O;
      Res.Error = std::move(Err);
      return Res;
    }
    if (O == CallOutcome::Ok && Rp.Status != ReplyStatus::RetryAfter) {
      Res.Outcome = CallOutcome::Ok;
      Res.Rp = std::move(Rp);
      return Res;
    }
    if (Attempt == Opts.MaxRetries) {
      if (Transient) {
        Res.Outcome = O;
        Res.Error = std::move(Err);
        return Res;
      }
      break;
    }
    // Back off at least as long as the server asked (zero for transport
    // failures), doubling per round, jittered into [d/2, d] so a herd of
    // shed clients desyncs.
    uint64_t Hint = O == CallOutcome::Ok ? Rp.RetryAfterMs : 0;
    uint64_t DelayMs = std::max<uint64_t>(BackoffMs, Hint);
    DelayMs = DelayMs / 2 + nextRand(RngState) % (DelayMs / 2 + 1);
    Res.BackoffWaitedMs += DelayMs;
    std::this_thread::sleep_for(std::chrono::milliseconds(DelayMs));
    BackoffMs = std::min<uint32_t>(Opts.MaxBackoffMs, BackoffMs * 2);
  }
  Res.Outcome = CallOutcome::ShedExhausted;
  Res.Error = "daemon shed the request on every attempt";
  return Res;
}
