//===- serve/Daemon.cpp - usher-serve event loop ---------------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "serve/Daemon.h"

#include "support/FaultInjection.h"
#include "support/RawStream.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <new>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace usher;
using namespace usher::serve;

/// Per-connection state. Only the event-loop thread touches it.
struct Daemon::Conn {
  uint64_t Id = 0;
  int Fd = -1;
  FrameReader Reader;
  std::string WriteBuf;
  size_t WriteOff = 0;

  bool open() const { return Fd >= 0; }
  bool hasPendingWrite() const { return WriteOff < WriteBuf.size(); }
};

namespace {

bool setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

} // namespace

Daemon::Daemon(DaemonOptions O) : Opts(std::move(O)) {
  SessionOptions SO;
  SO.SnapshotDir = Opts.SnapshotDir;
  SO.Engine = Opts.Engine;
  Sess = std::make_unique<Session>(SO);
  Pool = std::make_unique<ThreadPool>(std::max(1u, Opts.Workers));
}

Daemon::~Daemon() {
  for (auto &C : Conns)
    if (C->open())
      ::close(C->Fd);
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ::unlink(Opts.SocketPath.c_str());
  }
  for (int Fd : WakePipe)
    if (Fd >= 0)
      ::close(Fd);
}

bool Daemon::listen() {
  if (Opts.SocketPath.size() >= sizeof(sockaddr_un{}.sun_path)) {
    errs() << "usher-serve: socket path too long: " << Opts.SocketPath << "\n";
    return false;
  }
  if (::pipe(WakePipe) != 0 || !setNonBlocking(WakePipe[0]) ||
      !setNonBlocking(WakePipe[1])) {
    errs() << "usher-serve: cannot create wakeup pipe\n";
    return false;
  }
  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    errs() << "usher-serve: socket: " << std::strerror(errno) << "\n";
    return false;
  }
  ::unlink(Opts.SocketPath.c_str()); // Stale socket from a crashed daemon.
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Opts.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    errs() << "usher-serve: bind " << Opts.SocketPath << ": "
           << std::strerror(errno) << "\n";
    return false;
  }
  if (::listen(ListenFd, 64) != 0) {
    errs() << "usher-serve: listen: " << std::strerror(errno) << "\n";
    return false;
  }
  return setNonBlocking(ListenFd);
}

void Daemon::requestStop() {
  // Only an async-signal-safe write; the loop does the actual stopping.
  char B = 'S';
  [[maybe_unused]] ssize_t N = ::write(WakePipe[1], &B, 1);
}

DaemonStatus Daemon::daemonStatus() const {
  DaemonStatus DS;
  DS.QueueDepth = InFlight.load(std::memory_order_relaxed);
  DS.QueueLimit = Opts.QueueLimit;
  DS.Shed = Shed.load(std::memory_order_relaxed);
  DS.DroppedReplies = DroppedReplies.load(std::memory_order_relaxed);
  DS.ProtocolErrors = ProtocolErrors.load(std::memory_order_relaxed);
  DS.Workers = std::max(1u, Opts.Workers);
  return DS;
}

void Daemon::closeConn(Conn &C) {
  if (!C.open())
    return;
  ::close(C.Fd);
  C.Fd = -1;
  C.WriteBuf.clear();
  C.WriteOff = 0;
}

void Daemon::sendBytes(Conn &C, std::string Bytes) {
  if (!C.open())
    return;
  if (C.hasPendingWrite())
    C.WriteBuf.append(Bytes);
  else {
    C.WriteBuf = std::move(Bytes);
    C.WriteOff = 0;
  }
  connWritable(C);
}

void Daemon::connWritable(Conn &C) {
  while (C.open() && C.hasPendingWrite()) {
    ssize_t N = ::send(C.Fd, C.WriteBuf.data() + C.WriteOff,
                       C.WriteBuf.size() - C.WriteOff, MSG_NOSIGNAL);
    if (N > 0) {
      C.WriteOff += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return; // poll() will tell us when the socket drains.
    closeConn(C); // Peer is gone; the reply is undeliverable.
    return;
  }
  if (C.open() && !C.hasPendingWrite()) {
    C.WriteBuf.clear();
    C.WriteOff = 0;
  }
}

void Daemon::dispatch(Conn &C, Request Rq) {
  InFlight.fetch_add(1, std::memory_order_relaxed);
  const uint64_t ConnId = C.Id;
  Session *S = Sess.get();
  Pool->async([this, S, ConnId, Rq = std::move(Rq)] {
    // Pool tasks must not throw; Session::handle already guarantees it,
    // the belt-and-braces catch keeps a future regression from taking
    // the whole pool down.
    Reply Rp;
    try {
      Rp = S->handle(Rq);
    } catch (...) {
      Rp.Id = Rq.Id;
      Rp.Status = ReplyStatus::Error;
      Rp.Payload = "internal error: handler exception";
    }
    std::string Framed = frame(encodeReply(Rp));
    {
      std::lock_guard<std::mutex> L(OutboxMtx);
      Outbox.push_back(Done{ConnId, std::move(Framed), /*FaultEligible=*/true});
    }
    InFlight.fetch_sub(1, std::memory_order_relaxed);
    char B = 'W';
    [[maybe_unused]] ssize_t N = ::write(WakePipe[1], &B, 1);
  });
}

void Daemon::drainOutbox() {
  std::vector<Done> Ready;
  {
    std::lock_guard<std::mutex> L(OutboxMtx);
    Ready.swap(Outbox);
  }
  for (Done &D : Ready) {
    Conn *C = nullptr;
    for (auto &Candidate : Conns)
      if (Candidate->Id == D.ConnId && Candidate->open()) {
        C = Candidate.get();
        break;
      }
    if (!C) {
      // The client hung up before its reply was ready. The work is not
      // wasted — cacheable results are already snapshotted.
      DroppedReplies.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (D.FaultEligible && ioFaultShouldFail(IoFaultSite::SocketDropReply)) {
      // Deterministic mid-reply connection loss: the peer sees EOF
      // instead of its reply and must treat it as a transport error.
      DroppedReplies.fetch_add(1, std::memory_order_relaxed);
      closeConn(*C);
      continue;
    }
    sendBytes(*C, std::move(D.Bytes));
  }
}

bool Daemon::handleFrame(Conn &C, const std::string &Body) {
  Request Rq;
  std::string Err;
  bool Decoded = false;
  try {
    Decoded = decodeRequest(Body, Rq, &Err);
  } catch (const std::bad_alloc &) {
    // Allocation failure while parsing one request must not leak past
    // that request (exercised via the parse-alloc fault site).
    Err = "out of memory parsing request";
    Decoded = false;
  }
  if (!Decoded) {
    ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
    Reply Rp;
    Rp.Id = Rq.Id; // Whatever prefix decoded; 0 if the id never arrived.
    Rp.Status = ReplyStatus::Error;
    Rp.Payload = "bad request: " + Err;
    sendBytes(C, frame(encodeReply(Rp)));
    return true; // The frame itself was well-formed; keep the connection.
  }

  switch (Rq.Kind) {
  case Op::Ping:
  case Op::Status: {
    // Control ops bypass admission: an overloaded daemon must stay
    // observable.
    DaemonStatus DS = daemonStatus();
    sendBytes(C, frame(encodeReply(Sess->handle(Rq, &DS))));
    return true;
  }
  case Op::Shutdown: {
    sendBytes(C, frame(encodeReply(Sess->handle(Rq))));
    Stopping = true;
    return true;
  }
  case Op::Analyze:
  case Op::Diagnose:
  case Op::Query:
    break;
  }

  if (Stopping ||
      InFlight.load(std::memory_order_relaxed) >= Opts.QueueLimit) {
    // Admission control: shed instead of queueing without bound. The
    // client library turns this into backoff-and-retry.
    Shed.fetch_add(1, std::memory_order_relaxed);
    Reply Rp;
    Rp.Id = Rq.Id;
    Rp.Status = ReplyStatus::RetryAfter;
    Rp.RetryAfterMs = Opts.RetryAfterMs;
    sendBytes(C, frame(encodeReply(Rp)));
    return true;
  }
  dispatch(C, std::move(Rq));
  return true;
}

void Daemon::connReadable(Conn &C) {
  char Buf[16384];
  while (C.open()) {
    ssize_t N = ::read(C.Fd, Buf, sizeof(Buf));
    if (N > 0) {
      C.Reader.append(Buf, static_cast<size_t>(N));
      if (static_cast<size_t>(N) == sizeof(Buf))
        continue;
      break;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      break;
    closeConn(C); // EOF or hard error.
    return;
  }
  std::string Body;
  std::string Err;
  while (C.open()) {
    FrameReader::Result R = C.Reader.next(Body, &Err);
    if (R == FrameReader::Result::NeedMore)
      break;
    if (R == FrameReader::Result::Corrupt) {
      // Framing violations poison the byte stream; the only safe
      // recovery is closing this connection. Others are unaffected.
      ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
      closeConn(C);
      return;
    }
    if (!handleFrame(C, Body)) {
      closeConn(C);
      return;
    }
  }
}

void Daemon::acceptReady() {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      return; // EAGAIN or transient error; poll() retries.
    if (!setNonBlocking(Fd)) {
      ::close(Fd);
      continue;
    }
    auto C = std::make_unique<Conn>();
    C->Id = NextConnId++;
    C->Fd = Fd;
    Conns.push_back(std::move(C));
  }
}

int Daemon::run() {
  std::vector<pollfd> Fds;
  while (true) {
    drainOutbox();

    // Reap closed connections.
    Conns.erase(std::remove_if(Conns.begin(), Conns.end(),
                               [](const std::unique_ptr<Conn> &C) {
                                 return !C->open();
                               }),
                Conns.end());

    if (Stopping) {
      bool PendingWrites = false;
      for (auto &C : Conns)
        if (C->hasPendingWrite())
          PendingWrites = true;
      bool OutboxEmpty;
      {
        std::lock_guard<std::mutex> L(OutboxMtx);
        OutboxEmpty = Outbox.empty();
      }
      if (!PendingWrites && OutboxEmpty &&
          InFlight.load(std::memory_order_relaxed) == 0)
        break; // In-flight work finished and every reply is flushed.
    }

    Fds.clear();
    if (!Stopping)
      Fds.push_back({ListenFd, POLLIN, 0});
    Fds.push_back({WakePipe[0], POLLIN, 0});
    const size_t ConnBase = Fds.size();
    for (auto &C : Conns) {
      short Events = POLLIN;
      if (C->hasPendingWrite())
        Events |= POLLOUT;
      Fds.push_back({C->Fd, Events, 0});
    }

    // A finite timeout backstops any lost wakeup; correctness never
    // depends on it.
    if (::poll(Fds.data(), Fds.size(), 100) < 0) {
      if (errno == EINTR)
        continue;
      errs() << "usher-serve: poll: " << std::strerror(errno) << "\n";
      return 1;
    }

    size_t Idx = 0;
    if (!Stopping) {
      if (Fds[Idx].revents & POLLIN)
        acceptReady();
      ++Idx;
    }
    if (Fds[Idx].revents & POLLIN) {
      char Buf[256];
      ssize_t N;
      while ((N = ::read(WakePipe[0], Buf, sizeof(Buf))) > 0)
        for (ssize_t I = 0; I != N; ++I)
          if (Buf[I] == 'S')
            Stopping = true;
    }
    ++Idx;
    // Bound by the pollfd count: acceptReady() above may have appended
    // connections that have no pollfd entry this iteration.
    for (size_t CI = 0; ConnBase + CI < Fds.size() && CI < Conns.size();
         ++CI) {
      const pollfd &P = Fds[ConnBase + CI];
      Conn &C = *Conns[CI];
      if (!C.open() || P.fd != C.Fd)
        continue;
      if (P.revents & POLLOUT)
        connWritable(C);
      if (C.open() && (P.revents & (POLLIN | POLLHUP | POLLERR)))
        connReadable(C);
    }
  }
  return 0;
}
