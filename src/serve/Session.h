//===- serve/Session.h - Analysis service request handling ------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport-independent core of usher-serve: a Session maps one
/// decoded Request to one Reply. The daemon drives it from pool workers;
/// the fuzzer's serve-equivalence oracle and the unit tests drive it
/// directly, so every robustness property is testable without a socket.
///
/// Contracts:
///
///  - *Isolation*: handle() never throws and never mutates state shared
///    with other requests on failure. A poisoned input (parse error,
///    injected allocation failure, any internal exception) produces a
///    structured Error reply for that request only.
///
///  - *Deadlines degrade, never hang*: the request's DeadlineMs /
///    BudgetSteps / FaultSpec fields arm a PR 1 Budget token; exhaustion
///    walks the existing degradation ladder and the reply comes back
///    DEGRADED(<rung>) with the partial result — the sound plan the rung
///    guarantees — as its payload.
///
///  - *Warm == cold, byte for byte*: full-fidelity results (no budget
///    configured, no degradation) are rendered per function and written
///    to the content-hashed SnapshotStore, one atomically-written entry
///    per function plus one module entry. A warm request re-assembles the
///    identical payload from validated entries; any missing or corrupt
///    entry falls back to a full recompute. Budgeted or degraded results
///    never touch the store, so a warm reply can never encode a weaker
///    rung than cold analysis would produce.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_SERVE_SESSION_H
#define USHER_SERVE_SESSION_H

#include "analysis/SummaryEngine.h"
#include "core/Usher.h"
#include "serve/Protocol.h"
#include "serve/SnapshotStore.h"

#include <atomic>
#include <cstdint>
#include <string>

namespace usher {

class raw_ostream;

namespace serve {

struct SessionOptions {
  /// Snapshot directory; empty = in-memory store (tests, fuzz oracle).
  std::string SnapshotDir;
  /// Worker threads for one request's pipeline phases. The daemon runs
  /// requests concurrently, so per-request parallelism defaults to off.
  unsigned Jobs = 1;
  /// Definedness engine for analysis requests. Summary turns edits into
  /// incremental work: the per-function summary cache below persists
  /// through the snapshot store, so a changed module re-analyzes only the
  /// dirty functions plus the callers their summary-value deltas escape
  /// into, even though the whole-reply snapshot misses.
  core::EngineKind Engine = core::EngineKind::Global;
};

/// Daemon-side counters injected into the status JSON. A standalone
/// Session (no daemon) reports zeros.
struct DaemonStatus {
  uint64_t QueueDepth = 0;
  uint64_t QueueLimit = 0;
  uint64_t Shed = 0;
  uint64_t DroppedReplies = 0;
  uint64_t ProtocolErrors = 0;
  uint64_t Workers = 0;
};

class Session {
public:
  explicit Session(SessionOptions Opts);

  /// Handles one request. Never throws. Safe to call concurrently from
  /// several workers. \p DS, when non-null, is folded into Status
  /// replies.
  Reply handle(const Request &Rq, const DaemonStatus *DS = nullptr);

  /// Renders the usher-serve-v1 status JSON (kind "status").
  void printStatusJson(raw_ostream &OS, const DaemonStatus &DS) const;

  SnapshotStore &store() { return Store; }
  const SnapshotStore &store() const { return Store; }

  /// Requests whose replies were assembled entirely from snapshots.
  uint64_t servedWarm() const {
    return ServedWarm.load(std::memory_order_relaxed);
  }

  /// The per-function summary cache (live under EngineKind::Summary).
  const analysis::SummaryCache &summaryCache() const { return SummaryCache; }

private:
  Reply handleAnalysis(const Request &Rq);
  /// Op::Query: demand CFL-reachability over the request source's VFG,
  /// backed by the unification solver (never whole-program Andersen).
  /// Query replies are cheap and never snapshotted; an exhausted budget
  /// comes back DEGRADED(INCONCLUSIVE) rather than a wrong verdict.
  Reply handleQuery(const Request &Rq);

  SessionOptions Opts;
  SnapshotStore Store;
  analysis::SummaryCache SummaryCache;

  std::atomic<uint64_t> Requests{0};
  std::atomic<uint64_t> OpCount[NumOps]{};
  std::atomic<uint64_t> RepliesOk{0};
  std::atomic<uint64_t> RepliesDegraded{0};
  std::atomic<uint64_t> RepliesError{0};
  std::atomic<uint64_t> ServedWarm{0};
};

} // namespace serve
} // namespace usher

#endif // USHER_SERVE_SESSION_H
