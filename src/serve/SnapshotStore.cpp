//===- serve/SnapshotStore.cpp - Crash-safe content-hashed store -----------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "serve/SnapshotStore.h"

#include "serve/Protocol.h"
#include "support/FaultInjection.h"

#include <cstdio>

#include <fcntl.h>
#include <unistd.h>

using namespace usher;
using namespace usher::serve;

namespace {

constexpr uint32_t RecordMagic = 0x504E5355u; // "USNP" little-endian.
constexpr uint32_t RecordVersion = 1;
constexpr size_t HeaderBytes = 4 + 4 + 8 + 4 + 4;

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

uint32_t u32At(std::string_view B, size_t Off) {
  uint32_t V = 0;
  for (int I = 0; I != 4; ++I)
    V |= static_cast<uint32_t>(static_cast<uint8_t>(B[Off + I])) << (8 * I);
  return V;
}

uint64_t u64At(std::string_view B, size_t Off) {
  uint64_t V = 0;
  for (int I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(static_cast<uint8_t>(B[Off + I])) << (8 * I);
  return V;
}

/// Reads a whole file; returns false if it does not exist or is
/// unreadable.
bool readFile(const std::string &Path, std::string &Out) {
  std::FILE *FP = std::fopen(Path.c_str(), "rb");
  if (!FP)
    return false;
  Out.clear();
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), FP)) > 0)
    Out.append(Buf, N);
  bool Ok = !std::ferror(FP);
  std::fclose(FP);
  return Ok;
}

/// Writes \p Size bytes of \p Data to \p Path and fsyncs. Returns false
/// on any short write or I/O error.
bool writeFileSynced(const std::string &Path, const char *Data, size_t Size) {
  int Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return false;
  size_t Off = 0;
  while (Off < Size) {
    ssize_t W = ::write(Fd, Data + Off, Size - Off);
    if (W <= 0) {
      ::close(Fd);
      ::unlink(Path.c_str());
      return false;
    }
    Off += static_cast<size_t>(W);
  }
  bool Ok = ::fsync(Fd) == 0;
  ::close(Fd);
  return Ok;
}

} // namespace

uint64_t SnapshotStore::hashBytes(std::string_view Bytes, uint64_t Seed) {
  uint64_t H = Seed;
  for (char C : Bytes) {
    H ^= static_cast<uint8_t>(C);
    H *= 0x100000001b3ull;
  }
  return H;
}

uint64_t SnapshotStore::mix(uint64_t A, uint64_t B) {
  // SplitMix64 finalizer over the pair; order-dependent by design.
  uint64_t Z = A + 0x9E3779B97F4A7C15ull * (B | 1);
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

std::string SnapshotStore::encodeRecord(uint64_t Key,
                                        std::string_view Payload) {
  std::string Out;
  Out.reserve(HeaderBytes + Payload.size());
  putU32(Out, RecordMagic);
  putU32(Out, RecordVersion);
  putU64(Out, Key);
  putU32(Out, static_cast<uint32_t>(Payload.size()));
  putU32(Out, crc32(Payload.data(), Payload.size()));
  Out.append(Payload);
  return Out;
}

std::optional<std::string>
SnapshotStore::validateRecord(std::string_view Record, uint64_t Key) {
  if (Record.size() < HeaderBytes)
    return std::nullopt;
  if (u32At(Record, 0) != RecordMagic || u32At(Record, 4) != RecordVersion)
    return std::nullopt;
  if (u64At(Record, 8) != Key)
    return std::nullopt;
  const uint32_t Len = u32At(Record, 16);
  if (Record.size() != HeaderBytes + Len)
    return std::nullopt;
  std::string_view Payload = Record.substr(HeaderBytes, Len);
  if (crc32(Payload.data(), Payload.size()) != u32At(Record, 20))
    return std::nullopt;
  return std::string(Payload);
}

std::string SnapshotStore::pathFor(uint64_t Key) const {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "%016llx.snap",
                static_cast<unsigned long long>(Key));
  return Dir + "/" + Name;
}

std::optional<std::string> SnapshotStore::load(uint64_t Key) {
  std::lock_guard<std::mutex> L(Mtx);
  if (ioFaultShouldFail(IoFaultSite::SnapshotRead)) {
    ++S.Misses;
    return std::nullopt;
  }
  std::string Record;
  if (inMemory()) {
    auto It = Mem.find(Key);
    if (It == Mem.end()) {
      ++S.Misses;
      return std::nullopt;
    }
    Record = It->second;
  } else if (!readFile(pathFor(Key), Record)) {
    ++S.Misses;
    return std::nullopt;
  }
  std::optional<std::string> Payload = validateRecord(Record, Key);
  if (!Payload) {
    // Corrupt (torn write, bit rot, key collision): discard so the next
    // save starts clean, and let the caller recompute.
    ++S.CorruptDiscarded;
    if (inMemory())
      Mem.erase(Key);
    else
      ::unlink(pathFor(Key).c_str());
    return std::nullopt;
  }
  ++S.Hits;
  return Payload;
}

bool SnapshotStore::save(uint64_t Key, std::string_view Payload) {
  std::lock_guard<std::mutex> L(Mtx);
  if (ioFaultShouldFail(IoFaultSite::SnapshotWrite)) {
    ++S.WriteFailures;
    return false;
  }
  std::string Record = encodeRecord(Key, Payload);
  // The torn-write site persists a truncated record *under the final
  // name*, simulating a crash mid-write on a filesystem that reordered
  // the rename. load() must detect and discard it.
  const bool Torn = ioFaultShouldFail(IoFaultSite::SnapshotTornWrite);
  if (Torn)
    Record.resize(Record.size() / 2);
  if (inMemory()) {
    Mem[Key] = std::move(Record);
    if (Torn)
      ++S.WriteFailures;
    return !Torn;
  }
  const std::string Final = pathFor(Key);
  if (Torn) {
    writeFileSynced(Final, Record.data(), Record.size());
    ++S.WriteFailures;
    return false;
  }
  const std::string Tmp = Final + ".tmp";
  if (!writeFileSynced(Tmp, Record.data(), Record.size())) {
    ++S.WriteFailures;
    return false;
  }
  if (::rename(Tmp.c_str(), Final.c_str()) != 0) {
    ::unlink(Tmp.c_str());
    ++S.WriteFailures;
    return false;
  }
  return true;
}
