//===- serve/SnapshotStore.h - Crash-safe content-hashed store --*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's persistent result cache: 64-bit content keys mapped to
/// byte blobs, one file per entry. The store's whole contract is crash
/// safety, enforced by two mechanisms:
///
///  - *Atomic visibility*: save() writes the full record to a temporary
///    name in the same directory, fsyncs, then rename()s onto the final
///    name. A reader never observes a half-written entry under its final
///    name on a POSIX filesystem; a crash leaves at worst an orphaned
///    temporary that is ignored (and may be garbage-collected later).
///
///  - *Validated load*: every record carries magic, version, its own key,
///    payload length and a CRC-32 of the payload. load() discards (and
///    unlinks) anything that fails any check — a torn write that somehow
///    reached the final name (reordering filesystem, truncated disk) is
///    detected and treated as a miss, so the daemon silently recomputes
///    instead of serving garbage. ServeTest corrupts a record at every
///    byte boundary and asserts exactly this.
///
/// With an empty directory path the store keeps records in memory (the
/// fuzz oracle and unit tests use this); records go through the same
/// encoder and validator, so the two modes exercise identical logic.
///
/// The snapshot-read / snapshot-write / snapshot-torn-write I/O fault
/// sites (support/FaultInjection.h) are consulted on every load/save, so
/// campaigns can deterministically exercise every failure path.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_SERVE_SNAPSHOTSTORE_H
#define USHER_SERVE_SNAPSHOTSTORE_H

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace usher {
namespace serve {

class SnapshotStore {
public:
  /// Counters surfaced in the daemon's status JSON.
  struct Stats {
    uint64_t Hits = 0;             ///< Valid record served.
    uint64_t Misses = 0;           ///< No record (includes read faults).
    uint64_t CorruptDiscarded = 0; ///< Invalid record dropped on load.
    uint64_t WriteFailures = 0;    ///< save() could not persist.
  };

  /// \p Dir empty = in-memory mode. The directory must already exist (the
  /// daemon creates it at startup).
  explicit SnapshotStore(std::string Dir) : Dir(std::move(Dir)) {}

  bool inMemory() const { return Dir.empty(); }

  /// Fetches the payload stored under \p Key, or nullopt on miss, read
  /// failure, or corruption (corrupt entries are unlinked so the next
  /// save is clean). Thread-safe.
  std::optional<std::string> load(uint64_t Key);

  /// Persists \p Payload under \p Key atomically. Returns false when the
  /// entry could not be persisted — never fatal, the daemon just loses
  /// warm-start for this entry. Thread-safe.
  bool save(uint64_t Key, std::string_view Payload);

  Stats stats() const {
    std::lock_guard<std::mutex> L(Mtx);
    return S;
  }

  /// FNV-1a 64 over \p Bytes, chained from \p Seed.
  static uint64_t hashBytes(std::string_view Bytes,
                            uint64_t Seed = 0xcbf29ce484222325ull);

  /// Order-dependent combination of two 64-bit hashes.
  static uint64_t mix(uint64_t A, uint64_t B);

  /// Record encoder/validator, shared by both modes and by ServeTest's
  /// torn-write sweep: encode produces the exact on-disk bytes, validate
  /// returns the payload iff the record is intact and carries \p Key.
  static std::string encodeRecord(uint64_t Key, std::string_view Payload);
  static std::optional<std::string> validateRecord(std::string_view Record,
                                                   uint64_t Key);

  /// The on-disk path of \p Key's record (tests corrupt it directly).
  std::string pathFor(uint64_t Key) const;

private:
  std::string Dir;
  mutable std::mutex Mtx;
  std::unordered_map<uint64_t, std::string> Mem; ///< Raw records.
  Stats S;
};

} // namespace serve
} // namespace usher

#endif // USHER_SERVE_SNAPSHOTSTORE_H
