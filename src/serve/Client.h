//===- serve/Client.h - usher-serve client library --------------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Blocking client for the analysis service. One call() is one request:
/// connect, send, wait for the reply, close. The client honors the
/// daemon's overload protocol — a RETRY_AFTER reply triggers exponential
/// backoff with deterministic (seeded) jitter, waiting at least the
/// server's hint, up to MaxRetries attempts. Transient transport
/// failures (connect refusal while the daemon restarts, a connection
/// dropped mid-reply) retry on the same backoff schedule; malformed
/// reply bytes and a blown receive deadline are final. All outcomes are
/// typed, never exceptions.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_SERVE_CLIENT_H
#define USHER_SERVE_CLIENT_H

#include "serve/Protocol.h"

#include <cstdint>
#include <string>

namespace usher {
namespace serve {

struct ClientOptions {
  std::string SocketPath;
  /// Attempts per call() when the daemon sheds: the first try plus up to
  /// MaxRetries backoff-and-retry rounds.
  unsigned MaxRetries = 6;
  /// Backoff schedule: InitialBackoffMs doubles per shed reply, capped at
  /// MaxBackoffMs; each delay is jittered into [d/2, d] and never waits
  /// less than the server's RetryAfterMs hint.
  uint32_t InitialBackoffMs = 10;
  uint32_t MaxBackoffMs = 1000;
  /// Jitter seed; fixed so tests replay identical schedules.
  uint64_t JitterSeed = 0x7573686572ull;
  /// recv() timeout per attempt; 0 = wait forever.
  uint32_t ReceiveTimeoutMs = 0;
};

/// How one call() ended.
enum class CallOutcome {
  Ok,            ///< Reply received (any ReplyStatus except RetryAfter).
  ConnectError,  ///< Could not connect to the socket.
  ProtocolError, ///< Malformed reply bytes.
  Dropped,       ///< Connection closed before a full reply arrived.
  ShedExhausted, ///< RETRY_AFTER on every attempt.
  Timeout,       ///< ReceiveTimeoutMs elapsed waiting for the reply.
};
const char *callOutcomeName(CallOutcome O);

struct CallResult {
  CallOutcome Outcome = CallOutcome::ConnectError;
  Reply Rp;           ///< Valid when Outcome == Ok.
  unsigned Attempts = 0;
  uint64_t BackoffWaitedMs = 0; ///< Total shed backoff slept.
  std::string Error;  ///< Diagnostic for non-Ok outcomes.
};

class ServeClient {
public:
  explicit ServeClient(ClientOptions Opts);

  /// Issues \p Rq and waits for its reply, retrying shed replies with
  /// backoff. Never throws.
  CallResult call(const Request &Rq);

private:
  /// One connect-send-receive round. Fills \p Out on success.
  CallOutcome attempt(const Request &Rq, Reply &Out, std::string &Err);

  ClientOptions Opts;
  uint64_t RngState;
};

} // namespace serve
} // namespace usher

#endif // USHER_SERVE_CLIENT_H
