//===- serve/Protocol.cpp - usher-serve wire protocol ----------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include "support/FaultInjection.h"

#include <new>

using namespace usher;
using namespace usher::serve;

uint32_t serve::crc32(const void *Data, size_t Size) {
  static const auto Table = [] {
    struct {
      uint32_t T[256];
    } Tab;
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K != 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      Tab.T[I] = C;
    }
    return Tab;
  }();
  uint32_t C = 0xFFFFFFFFu;
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I != Size; ++I)
    C = Table.T[(C ^ P[I]) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

const char *serve::opName(Op O) {
  switch (O) {
  case Op::Analyze:
    return "analyze";
  case Op::Diagnose:
    return "diagnose";
  case Op::Status:
    return "status";
  case Op::Ping:
    return "ping";
  case Op::Shutdown:
    return "shutdown";
  case Op::Query:
    return "query";
  }
  return "unknown";
}

bool serve::parseOpName(std::string_view Name, Op &Out) {
  for (unsigned I = 0; I != NumOps; ++I) {
    Op O = static_cast<Op>(I);
    if (Name == opName(O)) {
      Out = O;
      return true;
    }
  }
  return false;
}

const char *serve::replyStatusName(ReplyStatus S) {
  switch (S) {
  case ReplyStatus::Ok:
    return "OK";
  case ReplyStatus::Degraded:
    return "DEGRADED";
  case ReplyStatus::Error:
    return "ERROR";
  case ReplyStatus::RetryAfter:
    return "RETRY_AFTER";
  }
  return "UNKNOWN";
}

namespace {

void putU8(std::string &Out, uint8_t V) { Out.push_back(static_cast<char>(V)); }

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

void putStr(std::string &Out, std::string_view S) {
  putU32(Out, static_cast<uint32_t>(S.size()));
  Out.append(S);
}

/// Bounds-checked little-endian reader over one body.
struct Cursor {
  std::string_view Body;
  size_t Pos = 0;

  bool getU8(uint8_t &V) {
    if (Body.size() - Pos < 1)
      return false;
    V = static_cast<uint8_t>(Body[Pos++]);
    return true;
  }
  bool getU32(uint32_t &V) {
    if (Body.size() - Pos < 4)
      return false;
    V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(static_cast<uint8_t>(Body[Pos++])) << (8 * I);
    return true;
  }
  bool getU64(uint64_t &V) {
    if (Body.size() - Pos < 8)
      return false;
    V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(static_cast<uint8_t>(Body[Pos++])) << (8 * I);
    return true;
  }
  bool getStr(std::string &S) {
    uint32_t N = 0;
    if (!getU32(N) || Body.size() - Pos < N)
      return false;
    S.assign(Body.data() + Pos, N);
    Pos += N;
    return true;
  }
  bool atEnd() const { return Pos == Body.size(); }
};

bool fail(std::string *Err, const char *Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

} // namespace

std::string serve::encodeRequest(const Request &Rq) {
  std::string Out;
  putU8(Out, ProtocolVersion);
  putU8(Out, static_cast<uint8_t>(Rq.Kind));
  putU64(Out, Rq.Id);
  putU32(Out, Rq.DeadlineMs);
  putU64(Out, Rq.BudgetSteps);
  putStr(Out, Rq.FaultSpec);
  putStr(Out, Rq.Source);
  putU32(Out, Rq.QuerySrc);
  putU32(Out, Rq.QuerySink);
  putStr(Out, Rq.Clients);
  return Out;
}

bool serve::decodeRequest(std::string_view Body, Request &Out,
                          std::string *Err) {
  Cursor C{Body};
  uint8_t Version = 0, Kind = 0;
  if (!C.getU8(Version))
    return fail(Err, "truncated request: missing version");
  if (Version != ProtocolVersion)
    return fail(Err, "unsupported protocol version");
  if (!C.getU8(Kind))
    return fail(Err, "truncated request: missing op");
  if (Kind >= NumOps)
    return fail(Err, "unknown request op");
  Out.Kind = static_cast<Op>(Kind);
  if (!C.getU64(Out.Id))
    return fail(Err, "truncated request: missing id");
  // The deterministic allocation-failure site: from here on the parser
  // allocates for the variable-length fields, which is where a real
  // std::bad_alloc would surface. Id is already decoded, so the daemon's
  // isolation layer can still correlate its Error reply.
  if (ioFaultShouldFail(IoFaultSite::ParseAlloc))
    throw std::bad_alloc();
  if (!C.getU32(Out.DeadlineMs))
    return fail(Err, "truncated request: missing deadline");
  if (!C.getU64(Out.BudgetSteps))
    return fail(Err, "truncated request: missing step budget");
  if (!C.getStr(Out.FaultSpec))
    return fail(Err, "truncated request: bad fault spec field");
  if (!C.getStr(Out.Source))
    return fail(Err, "truncated request: bad source field");
  if (!C.getU32(Out.QuerySrc))
    return fail(Err, "truncated request: missing query source node");
  if (!C.getU32(Out.QuerySink))
    return fail(Err, "truncated request: missing query sink node");
  if (!C.getStr(Out.Clients))
    return fail(Err, "truncated request: bad client list field");
  if (!C.atEnd())
    return fail(Err, "trailing bytes after request");
  return true;
}

std::string serve::encodeReply(const Reply &Rp) {
  std::string Out;
  putU8(Out, ProtocolVersion);
  putU8(Out, static_cast<uint8_t>(Rp.Status));
  putU64(Out, Rp.Id);
  putU32(Out, Rp.RetryAfterMs);
  putStr(Out, Rp.Rung);
  putStr(Out, Rp.Payload);
  return Out;
}

bool serve::decodeReply(std::string_view Body, Reply &Out, std::string *Err) {
  Cursor C{Body};
  uint8_t Version = 0, Status = 0;
  if (!C.getU8(Version))
    return fail(Err, "truncated reply: missing version");
  if (Version != ProtocolVersion)
    return fail(Err, "unsupported protocol version");
  if (!C.getU8(Status))
    return fail(Err, "truncated reply: missing status");
  if (Status > static_cast<uint8_t>(ReplyStatus::RetryAfter))
    return fail(Err, "unknown reply status");
  Out.Status = static_cast<ReplyStatus>(Status);
  if (!C.getU64(Out.Id))
    return fail(Err, "truncated reply: missing id");
  if (!C.getU32(Out.RetryAfterMs))
    return fail(Err, "truncated reply: missing retry hint");
  if (!C.getStr(Out.Rung))
    return fail(Err, "truncated reply: bad rung field");
  if (!C.getStr(Out.Payload))
    return fail(Err, "truncated reply: bad payload field");
  if (!C.atEnd())
    return fail(Err, "trailing bytes after reply");
  return true;
}

std::string serve::frame(std::string_view Body) {
  std::string Out;
  Out.reserve(Body.size() + 8);
  putU32(Out, static_cast<uint32_t>(Body.size()));
  putU32(Out, crc32(Body.data(), Body.size()));
  Out.append(Body);
  return Out;
}

FrameReader::Result FrameReader::next(std::string &Body, std::string *Err) {
  // Compact once the consumed prefix dominates the buffer, so a
  // long-lived connection does not grow its buffer without bound.
  if (Pos > 4096 && Pos * 2 > Buf.size()) {
    Buf.erase(0, Pos);
    Pos = 0;
  }
  const size_t Avail = Buf.size() - Pos;
  if (Avail < 8)
    return Result::NeedMore;
  auto U32At = [&](size_t Off) {
    uint32_t V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(static_cast<uint8_t>(Buf[Pos + Off + I]))
           << (8 * I);
    return V;
  };
  const uint32_t Len = U32At(0);
  if (Len > MaxFrameBytes) {
    if (Err)
      *Err = "frame length exceeds limit";
    return Result::Corrupt;
  }
  if (Avail < 8 + static_cast<size_t>(Len))
    return Result::NeedMore;
  const uint32_t Crc = U32At(4);
  if (crc32(Buf.data() + Pos + 8, Len) != Crc) {
    if (Err)
      *Err = "frame CRC mismatch";
    return Result::Corrupt;
  }
  Body.assign(Buf, Pos + 8, Len);
  Pos += 8 + Len;
  return Result::Frame;
}
