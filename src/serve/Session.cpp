//===- serve/Session.cpp - Analysis service request handling ---------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "serve/Session.h"

#include "core/StaticDiagnosis.h"
#include "core/Usher.h"
#include "ir/IR.h"
#include "parser/Parser.h"
#include "support/FaultInjection.h"
#include "support/RawStream.h"

#include <exception>
#include <utility>

using namespace usher;
using namespace usher::serve;

Session::Session(SessionOptions O)
    : Opts(std::move(O)), Store(Opts.SnapshotDir) {
  // Summary records live in the same snapshot store as reply sections,
  // behind a salt so the key spaces cannot collide. The store's record
  // framing (magic, version, length, CRC) is what makes a torn or stale
  // on-disk summary a miss instead of garbage input to the engine.
  const uint64_t Salt = SnapshotStore::hashBytes("summary-cache-v1");
  SummaryCache.setPersistence(
      [this, Salt](uint64_t Key, std::string &Payload) {
        std::optional<std::string> E = Store.load(SnapshotStore::mix(Salt, Key));
        if (!E)
          return false;
        Payload = std::move(*E);
        return true;
      },
      [this, Salt](uint64_t Key, const std::string &Payload) {
        Store.save(SnapshotStore::mix(Salt, Key), Payload);
      });
}

namespace {

/// Key derivation. The module key folds the canonical printed module text
/// and the operation, so any textual change — or asking for diagnosis
/// instead of analysis — lands on disjoint entries. Per-function and
/// module-section entries are derived from it; they are per-function
/// *files*, not per-function validity (ROADMAP item 2 covers true
/// incremental invalidation).
uint64_t moduleKey(const ir::Module &M, Op Kind, const std::string &Clients) {
  std::string Text;
  raw_string_ostream OS(Text);
  M.print(OS);
  uint64_t Key = SnapshotStore::mix(SnapshotStore::hashBytes(opName(Kind)),
                                    SnapshotStore::hashBytes(Text));
  // The client list changes the reply, so it must change the key; the
  // empty (UUV-only) list keeps the pre-framework key values, so old
  // snapshot stores stay warm.
  if (!Clients.empty())
    Key = SnapshotStore::mix(Key, SnapshotStore::hashBytes(Clients));
  return Key;
}

uint64_t functionKey(uint64_t ModuleKey, const ir::Function &F) {
  return SnapshotStore::mix(ModuleKey, SnapshotStore::hashBytes(F.getName()));
}

uint64_t moduleSectionKey(uint64_t ModuleKey) {
  return SnapshotStore::mix(ModuleKey, SnapshotStore::hashBytes("#module"));
}

/// Renders the analyze section for one function: static plan counts
/// derived from the instrumentation plan, deterministic in module order.
std::string renderAnalyzeFunction(const core::InstrumentationPlan &Plan,
                                  const ir::Function &F) {
  uint64_t Checks = 0, ShadowOps = 0, Reads = 0;
  auto Count = [&](const std::vector<core::ShadowOp> &Ops) {
    for (const core::ShadowOp &Op : Ops) {
      if (Op.K == core::ShadowOp::Kind::Check)
        ++Checks;
      else
        ++ShadowOps;
      Reads += Op.reads();
    }
  };
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions()) {
      Count(Plan.before(I.get()));
      Count(Plan.after(I.get()));
    }
  const uint64_t EntryOps = Plan.entry(&F).size();
  ShadowOps += EntryOps;
  for (const core::ShadowOp &Op : Plan.entry(&F))
    Reads += Op.reads();

  std::string Out;
  raw_string_ostream OS(Out);
  OS << "function " << F.getName() << ": checks=" << Checks
     << " shadow-ops=" << ShadowOps << " entry-ops=" << EntryOps
     << " reads=" << Reads << "\n";
  return Out;
}

std::string renderAnalyzeModule(const core::UsherResult &R) {
  std::string Out;
  raw_string_ostream OS(Out);
  OS << "module: variant=" << core::toolVariantName(R.Degradation.Rung)
     << " checks=" << R.Plan.countChecks()
     << " shadow-ops=" << R.Plan.countShadowOps()
     << " propagations=" << R.Plan.countPropagationReads() << "\n";
  for (const core::ClientPlanInfo &CP : R.ClientPlans)
    OS << "client " << core::clientName(CP.Kind)
       << ": checks=" << CP.Plan.countChecks()
       << " shadow-ops=" << CP.Plan.countShadowOps()
       << " sinks=" << CP.SinkCandidates << " unsafe=" << CP.UnsafeSinks
       << "\n";
  if (R.Degradation.Degraded)
    OS << "degraded: " << R.Degradation.summary() << "\n";
  return Out;
}

/// Renders the diagnose section for one function: its non-CLEAN findings
/// in instruction-id order (the report is already so ordered).
std::string renderDiagnoseFunction(const core::DiagnosisReport &Report,
                                   const ir::Function &F) {
  std::string Out;
  raw_string_ostream OS(Out);
  uint64_t N = 0;
  std::string Body;
  raw_string_ostream BodyOS(Body);
  for (const core::Finding &Fd : Report.Findings) {
    if (Fd.I->getParent()->getParent() != &F)
      continue;
    ++N;
    BodyOS << "  " << core::verdictName(Fd.V) << " use of "
           << Fd.Var->getName() << " at #" << Fd.I->getId()
           << " witness-steps=" << Fd.Witness.size() << "\n";
  }
  OS << "function " << F.getName() << ": findings=" << N << "\n" << Body;
  return Out;
}

std::string renderDiagnoseModule(const core::DiagnosisReport &Report) {
  std::string Out;
  raw_string_ostream OS(Out);
  OS << "module: critical-uses="
     << (Report.NumClean + Report.NumMay + Report.NumDefinite)
     << " clean=" << Report.NumClean << " may=" << Report.NumMay
     << " definite=" << Report.NumDefinite << "\n";
  return Out;
}

} // namespace

Reply Session::handleAnalysis(const Request &Rq) {
  Reply Rp;
  Rp.Id = Rq.Id;

  parser::ParseResult PR = parser::parseModule(Rq.Source);
  if (!PR.succeeded()) {
    Rp.Status = ReplyStatus::Error;
    std::string Msg;
    raw_string_ostream OS(Msg);
    OS << "parse error";
    for (const std::string &E : PR.Errors)
      OS << "\n  " << E;
    Rp.Payload = std::move(Msg);
    return Rp;
  }
  ir::Module &M = *PR.M;

  // Sanitizer-client selection (analyze only; diagnose is UUV by nature).
  std::vector<core::ClientKind> Clients;
  if (Rq.Kind == Op::Analyze && !Rq.Clients.empty()) {
    std::string_view List = Rq.Clients;
    for (;;) {
      size_t Comma = List.find(',');
      core::ClientKind K;
      if (!core::parseClientName(std::string(List.substr(0, Comma)), K)) {
        Rp.Status = ReplyStatus::Error;
        Rp.Payload = "unknown sanitizer client in list: " + Rq.Clients;
        return Rp;
      }
      Clients.push_back(K);
      if (Comma == std::string_view::npos)
        break;
      List.remove_prefix(Comma + 1);
    }
  }

  // Budgeted requests bypass the snapshot store in both directions: their
  // results may be degraded (weaker than what a later unbudgeted request
  // deserves) and an unbudgeted snapshot must never mask the degradation
  // the caller asked to observe. Warm therefore always equals cold.
  const bool Cacheable =
      Rq.DeadlineMs == 0 && Rq.BudgetSteps == 0 && Rq.FaultSpec.empty();

  const uint64_t MK =
      moduleKey(M, Rq.Kind, Rq.Kind == Op::Analyze ? Rq.Clients : "");
  const uint64_t SectionKey = moduleSectionKey(MK);

  if (Cacheable) {
    // Warm path: every per-function entry plus the module section must
    // validate; any miss or discarded corruption falls through to a full
    // recompute (which re-saves, healing the store).
    std::string Assembled;
    bool Complete = true;
    for (const auto &F : M.functions()) {
      std::optional<std::string> E = Store.load(functionKey(MK, *F));
      if (!E) {
        Complete = false;
        break;
      }
      Assembled += *E;
    }
    if (Complete) {
      if (std::optional<std::string> E = Store.load(SectionKey)) {
        Rp.Status = ReplyStatus::Ok;
        Rp.Payload = Assembled + *E;
        ServedWarm.fetch_add(1, std::memory_order_relaxed);
        return Rp;
      }
    }
  }

  core::UsherOptions UO;
  UO.Jobs = Opts.Jobs;
  UO.Engine = Opts.Engine;
  UO.Clients = Clients;
  // Budgeted/faulted requests skip the summary cache for the same reason
  // they skip the reply snapshots: the caller asked to observe resource
  // exhaustion, and warm summaries would move where it lands.
  if (Cacheable && Opts.Engine == core::EngineKind::Summary)
    UO.SummaryCache = &SummaryCache;
  UO.Limits.PhaseDeadlineMs = Rq.DeadlineMs;
  UO.Limits.MaxStepsPerPhase = Rq.BudgetSteps;
  if (!Rq.FaultSpec.empty()) {
    std::string Err;
    std::optional<FaultPlan> FP = parseFaultSpec(Rq.FaultSpec, &Err);
    if (!FP) {
      Rp.Status = ReplyStatus::Error;
      Rp.Payload = "bad fault spec: " + Err;
      return Rp;
    }
    UO.Fault = *FP;
  }

  core::UsherResult R = core::runUsher(M, UO);

  std::vector<std::string> Sections;
  std::string ModuleSection;
  if (Rq.Kind == Op::Analyze) {
    for (const auto &F : M.functions())
      Sections.push_back(renderAnalyzeFunction(R.Plan, *F));
    ModuleSection = renderAnalyzeModule(R);
  } else {
    // Diagnosis needs the static analyses; rungs that discarded them
    // (terminal MSan fallback) cannot answer, and say so explicitly
    // rather than silently reporting zero findings.
    if (!R.PA || !R.CG || !R.G) {
      Rp.Status = ReplyStatus::Degraded;
      Rp.Rung = core::toolVariantName(R.Degradation.Rung);
      Rp.Payload = "diagnosis unavailable at rung " + Rp.Rung + "\n";
      return Rp;
    }
    core::DiagnosisOptions DO;
    core::StaticDiagnosis Diag(*R.PA, *R.CG, *R.G, DO);
    for (const auto &F : M.functions())
      Sections.push_back(renderDiagnoseFunction(Diag.report(), *F));
    ModuleSection = renderDiagnoseModule(Diag.report());
  }

  for (const std::string &S : Sections)
    Rp.Payload += S;
  Rp.Payload += ModuleSection;

  if (R.Degradation.Degraded) {
    Rp.Status = ReplyStatus::Degraded;
    Rp.Rung = core::toolVariantName(R.Degradation.Rung);
    return Rp; // Degraded results are never snapshotted.
  }

  Rp.Status = ReplyStatus::Ok;
  if (Cacheable) {
    // Failures here cost warm-start only; the reply is already complete.
    for (size_t I = 0; I != Sections.size(); ++I)
      Store.save(functionKey(MK, *M.functions()[I]), Sections[I]);
    Store.save(SectionKey, ModuleSection);
  }
  return Rp;
}

Reply Session::handleQuery(const Request &Rq) {
  Reply Rp;
  Rp.Id = Rq.Id;

  parser::ParseResult PR = parser::parseModule(Rq.Source);
  if (!PR.succeeded()) {
    Rp.Status = ReplyStatus::Error;
    std::string Msg;
    raw_string_ostream OS(Msg);
    OS << "parse error";
    for (const std::string &E : PR.Errors)
      OS << "\n  " << E;
    Rp.Payload = std::move(Msg);
    return Rp;
  }

  core::UsherOptions UO;
  // The demand fast lane: the unification solver backs the VFG so a
  // single-pair question never pays for whole-program Andersen solving.
  UO.Pta.Solver = analysis::SolverKind::Unify;
  UO.Limits.PhaseDeadlineMs = Rq.DeadlineMs;
  UO.Limits.MaxStepsPerPhase = Rq.BudgetSteps;
  if (!Rq.FaultSpec.empty()) {
    std::string Err;
    std::optional<FaultPlan> FP = parseFaultSpec(Rq.FaultSpec, &Err);
    if (!FP) {
      Rp.Status = ReplyStatus::Error;
      Rp.Payload = "bad fault spec: " + Err;
      return Rp;
    }
    UO.Fault = *FP;
  }

  core::QueryOutcome Q =
      core::runUsherQuery(*PR.M, UO, Rq.QuerySrc, Rq.QuerySink);
  if (!Q.Valid) {
    Rp.Status = ReplyStatus::Error;
    Rp.Payload = Q.Error;
    return Rp;
  }

  std::string Payload;
  raw_string_ostream OS(Payload);
  OS << "query " << Rq.QuerySrc << " -> " << Rq.QuerySink << ": "
     << (Q.Exhausted    ? "inconclusive"
         : Q.Reachable  ? "reachable"
                        : "unreachable")
     << "\n"
     << "engine: " << analysis::solverKindName(Q.Solver.Engine) << "\n"
     << "states: " << Q.StatesVisited << "\n";
  if (Q.Reachable && !Q.Witness.empty()) {
    OS << "witness: " << Q.Witness.front().Node;
    for (size_t I = 1; I != Q.Witness.size(); ++I) {
      const analysis::QueryStep &S = Q.Witness[I];
      switch (S.Kind) {
      case vfg::EdgeKind::Direct:
        OS << " -> ";
        break;
      case vfg::EdgeKind::Call:
        OS << " -call@" << S.CallSite << "-> ";
        break;
      case vfg::EdgeKind::Ret:
        OS << " -ret@" << S.CallSite << "-> ";
        break;
      }
      OS << S.Node;
    }
    OS << "\n";
  }
  Rp.Payload = std::move(Payload);

  if (Q.Exhausted) {
    // The verdict is unknown, not wrong; the caller can retry with a
    // bigger budget. Query results are never snapshotted either way.
    Rp.Status = ReplyStatus::Degraded;
    Rp.Rung = "INCONCLUSIVE";
    return Rp;
  }
  Rp.Status = ReplyStatus::Ok;
  return Rp;
}

Reply Session::handle(const Request &Rq, const DaemonStatus *DS) {
  Requests.fetch_add(1, std::memory_order_relaxed);
  const unsigned KindIdx = static_cast<unsigned>(Rq.Kind);
  if (KindIdx < NumOps)
    OpCount[KindIdx].fetch_add(1, std::memory_order_relaxed);

  Reply Rp;
  Rp.Id = Rq.Id;
  try {
    switch (Rq.Kind) {
    case Op::Ping:
      Rp.Status = ReplyStatus::Ok;
      Rp.Payload = "pong";
      break;
    case Op::Shutdown:
      Rp.Status = ReplyStatus::Ok;
      Rp.Payload = "bye";
      break;
    case Op::Status: {
      std::string Json;
      raw_string_ostream OS(Json);
      printStatusJson(OS, DS ? *DS : DaemonStatus());
      Rp.Status = ReplyStatus::Ok;
      Rp.Payload = std::move(Json);
      break;
    }
    case Op::Analyze:
    case Op::Diagnose:
      Rp = handleAnalysis(Rq);
      break;
    case Op::Query:
      Rp = handleQuery(Rq);
      break;
    }
  } catch (const std::exception &E) {
    // Isolation: whatever this request did to itself, the session and
    // every other request are unaffected — the caller gets a structured
    // error and the daemon keeps serving.
    Rp = Reply();
    Rp.Id = Rq.Id;
    Rp.Status = ReplyStatus::Error;
    Rp.Payload = std::string("internal error: ") + E.what();
  } catch (...) {
    Rp = Reply();
    Rp.Id = Rq.Id;
    Rp.Status = ReplyStatus::Error;
    Rp.Payload = "internal error: unknown exception";
  }

  switch (Rp.Status) {
  case ReplyStatus::Ok:
    RepliesOk.fetch_add(1, std::memory_order_relaxed);
    break;
  case ReplyStatus::Degraded:
    RepliesDegraded.fetch_add(1, std::memory_order_relaxed);
    break;
  case ReplyStatus::Error:
    RepliesError.fetch_add(1, std::memory_order_relaxed);
    break;
  case ReplyStatus::RetryAfter:
    break; // Issued by the daemon's admission control, not by sessions.
  }
  return Rp;
}

void Session::printStatusJson(raw_ostream &OS, const DaemonStatus &DS) const {
  const SnapshotStore::Stats SS = Store.stats();
  auto Ld = [](const std::atomic<uint64_t> &A) {
    return A.load(std::memory_order_relaxed);
  };
  OS << "{\n";
  OS << "  \"schema\": \"usher-serve-v1\",\n";
  OS << "  \"kind\": \"status\",\n";
  OS << "  \"requests\": {";
  OS << "\"total\": " << Ld(Requests);
  for (unsigned I = 0; I != NumOps; ++I)
    OS << ", \"" << opName(static_cast<Op>(I)) << "\": " << Ld(OpCount[I]);
  OS << "},\n";
  OS << "  \"replies\": {\"ok\": " << Ld(RepliesOk)
     << ", \"degraded\": " << Ld(RepliesDegraded)
     << ", \"error\": " << Ld(RepliesError)
     << ", \"served_warm\": " << Ld(ServedWarm) << "},\n";
  OS << "  \"snapshot\": {\"in_memory\": " << Store.inMemory()
     << ", \"hits\": " << SS.Hits << ", \"misses\": " << SS.Misses
     << ", \"corrupt_discarded\": " << SS.CorruptDiscarded
     << ", \"write_failures\": " << SS.WriteFailures << "},\n";
  const analysis::SummaryCache::Stats SumS = SummaryCache.stats();
  OS << "  \"summary\": {\"engine\": \"" << core::engineKindName(Opts.Engine)
     << "\", \"hits\": " << SumS.Hits << ", \"misses\": " << SumS.Misses
     << ", \"stale_discarded\": " << SumS.StaleDiscarded << "},\n";
  OS << "  \"daemon\": {\"queue_depth\": " << DS.QueueDepth
     << ", \"queue_limit\": " << DS.QueueLimit << ", \"shed\": " << DS.Shed
     << ", \"dropped_replies\": " << DS.DroppedReplies
     << ", \"protocol_errors\": " << DS.ProtocolErrors
     << ", \"workers\": " << DS.Workers << "}\n";
  OS << "}\n";
}
