//===- serve/Protocol.h - usher-serve wire protocol -------------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The length-prefixed protocol the analysis service speaks over its unix
/// socket. A frame is
///
///   u32le body-length | u32le crc32(body) | body
///
/// and a body is a versioned, little-endian encoded Request or Reply.
/// Framing errors (oversized length, CRC mismatch, truncated body) are
/// protocol errors: the peer that detects one closes the connection —
/// request state never leaks across a corrupt frame. Every multi-byte
/// integer is little-endian regardless of host order, so captures replay
/// across machines.
///
/// The request parser is a deterministic fault site (IoFaultSite::
/// ParseAlloc): with that site armed, decodeRequest throws std::bad_alloc
/// exactly as a real allocation failure would, and the daemon's request
/// isolation must convert it into a structured Error reply.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_SERVE_PROTOCOL_H
#define USHER_SERVE_PROTOCOL_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace usher {
namespace serve {

/// Wire protocol version carried in every body. Version 2 added the
/// demand-query op and the query src/sink request fields; version 3 the
/// sanitizer-client list on analyze requests.
constexpr uint8_t ProtocolVersion = 3;

/// Hard cap on one frame's body. A length field above this is a framing
/// error, not an allocation request — a corrupt peer cannot make the
/// daemon reserve gigabytes.
constexpr uint32_t MaxFrameBytes = 16u << 20;

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) of \p Size bytes at \p Data.
uint32_t crc32(const void *Data, size_t Size);

/// Request operations.
enum class Op : uint8_t {
  Analyze = 0,  ///< Run the instrumentation pipeline on Source.
  Diagnose = 1, ///< Run static UUV diagnosis on Source.
  Status = 2,   ///< Fetch the daemon's usher-serve-v1 status JSON.
  Ping = 3,     ///< Liveness probe.
  Shutdown = 4, ///< Clean daemon shutdown after the reply is delivered.
  Query = 5,    ///< Demand CFL-reachability query on Source's VFG
                ///< (QuerySrc -> QuerySink), answered by the demand
                ///< engine over unification-backed points-to — no
                ///< whole-program analysis.
};
constexpr unsigned NumOps = 6;

/// Stable lower-case op name ("analyze", "diagnose", ...).
const char *opName(Op O);

/// Inverse of opName(). Returns false on an unknown name.
bool parseOpName(std::string_view Name, Op &Out);

/// Reply statuses.
enum class ReplyStatus : uint8_t {
  Ok = 0,         ///< Full-fidelity result in Payload.
  Degraded = 1,   ///< Budget ran out; partial result at rung Rung.
  Error = 2,      ///< This request failed; Payload holds the diagnostic.
  RetryAfter = 3, ///< Shed by admission control; retry after RetryAfterMs.
};

/// Stable upper-case status name ("OK", "DEGRADED", "ERROR",
/// "RETRY_AFTER") used in client output and tests.
const char *replyStatusName(ReplyStatus S);

/// One request. Analyze/Diagnose carry TinyC source; the budget fields
/// map onto the PR 1 Budget token (0 = unlimited) and FaultSpec onto a
/// budget-phase fault plan, so a request can be deadlined or
/// deterministically degraded without daemon-side configuration.
struct Request {
  Op Kind = Op::Ping;
  uint64_t Id = 0;
  uint32_t DeadlineMs = 0;  ///< Per-phase wall-clock deadline.
  uint64_t BudgetSteps = 0; ///< Per-phase worklist-step budget.
  std::string FaultSpec;    ///< "<phase>@<step>[:once|:<n>]" or empty.
  std::string Source;       ///< TinyC program text.
  uint32_t QuerySrc = 0;    ///< Op::Query: source VFG node id.
  uint32_t QuerySink = 0;   ///< Op::Query: sink VFG node id.
  /// Op::Analyze: comma-separated sanitizer client list ("uuv,bounds");
  /// empty means UUV only, exactly the version-2 behavior.
  std::string Clients;
};

/// One reply. Id always echoes the request's.
struct Reply {
  ReplyStatus Status = ReplyStatus::Ok;
  uint64_t Id = 0;
  std::string Rung;         ///< Degradation rung name when Degraded.
  uint32_t RetryAfterMs = 0;///< Backoff hint when RetryAfter.
  std::string Payload;
};

/// Encodes a request/reply body (no frame header).
std::string encodeRequest(const Request &Rq);
std::string encodeReply(const Reply &Rp);

/// Decodes a body. Returns false (with a diagnostic in \p Err) on a
/// malformed body; fields decoded before the malformation — notably Id —
/// are left in \p Out so an error reply can still be correlated.
/// decodeRequest throws std::bad_alloc when IoFaultSite::ParseAlloc is
/// armed and fires.
bool decodeRequest(std::string_view Body, Request &Out,
                   std::string *Err = nullptr);
bool decodeReply(std::string_view Body, Reply &Out,
                 std::string *Err = nullptr);

/// Wraps \p Body in a frame header.
std::string frame(std::string_view Body);

/// Incremental frame extractor over a byte stream.
class FrameReader {
public:
  enum class Result {
    Frame,    ///< One complete body extracted.
    NeedMore, ///< Not enough buffered bytes yet.
    Corrupt,  ///< Framing violation; the connection must be closed.
  };

  /// Appends \p Size received bytes.
  void append(const char *Data, size_t Size) { Buf.append(Data, Size); }

  /// Extracts the next complete frame body into \p Body.
  Result next(std::string &Body, std::string *Err = nullptr);

  /// Buffered bytes not yet consumed (tests).
  size_t pending() const { return Buf.size() - Pos; }

private:
  std::string Buf;
  size_t Pos = 0;
};

} // namespace serve
} // namespace usher

#endif // USHER_SERVE_PROTOCOL_H
