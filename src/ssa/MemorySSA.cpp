//===- ssa/MemorySSA.cpp - Memory SSA construction -------------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "ssa/MemorySSA.h"

#include "analysis/CallGraph.h"
#include "analysis/ModRef.h"
#include "analysis/PointerAnalysis.h"
#include "ir/IR.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

using namespace usher;
using namespace usher::ssa;
using namespace usher::ir;
using analysis::ModRefAnalysis;
using analysis::PointerAnalysis;

const std::vector<PhiNode> FunctionSSA::EmptyPhis;

const std::vector<PhiNode> &FunctionSSA::phisIn(const BasicBlock *BB) const {
  auto It = Phis.find(BB);
  return It == Phis.end() ? EmptyPhis : It->second;
}

const DefDesc &FunctionSSA::defOf(VarKey Key, uint32_t Version) const {
  auto It = Defs.find(Key);
  assert(It != Defs.end() && "variable never materialized");
  assert(Version < It->second.size() && "version out of range");
  return It->second[Version];
}

std::vector<VarKey> FunctionSSA::allKeys() const {
  std::vector<VarKey> Keys;
  Keys.reserve(Defs.size());
  for (const auto &[Key, Descs] : Defs)
    Keys.push_back(Key);
  return Keys;
}

//===----------------------------------------------------------------------===//
// Builder
//===----------------------------------------------------------------------===//

class FunctionSSA::Builder {
public:
  Builder(FunctionSSA &S, const PointerAnalysis &PA, const ModRefAnalysis &MR)
      : S(S), F(S.F), PA(PA), MR(MR) {}

  void run();

private:
  void collectFormals();
  void placeMuChi();
  void placePhis();
  void rename();

  uint32_t freshVersion(VarKey Key, DefDesc Desc) {
    auto &Descs = S.Defs[Key];
    Descs.push_back(Desc);
    return static_cast<uint32_t>(Descs.size() - 1);
  }

  FunctionSSA &S;
  const Function &F;
  const PointerAnalysis &PA;
  const ModRefAnalysis &MR;

  // Pre-versioning mu/chi placement.
  std::unordered_map<const Instruction *, std::vector<uint32_t>> MuLocs;
  std::unordered_map<const Instruction *,
                     std::vector<std::pair<uint32_t, ChiKind>>>
      ChiLocs;

  // Blocks containing a def of each key (entry is implicit for all keys).
  std::unordered_map<VarKey, std::vector<const BasicBlock *>, VarKeyHash>
      DefBlocks;
  std::vector<VarKey> AllKeys;
};

void FunctionSSA::Builder::collectFormals() {
  BitSet In = MR.ref(&F);
  In.unionWith(MR.mod(&F));
  S.FormalIn = In.toVector();
  S.FormalOut = MR.mod(&F).toVector();
}

void FunctionSSA::Builder::placeMuChi() {
  for (const auto &BB : F.blocks()) {
    if (!S.CFG.isReachable(BB->getId()))
      continue;
    for (const auto &I : BB->instructions()) {
      if (const auto *Ld = dyn_cast<LoadInst>(I.get())) {
        MuLocs[I.get()] = PA.pointsTo(Ld->getPtr());
      } else if (const auto *St = dyn_cast<StoreInst>(I.get())) {
        auto &Chis = ChiLocs[I.get()];
        for (uint32_t Loc : PA.pointsTo(St->getPtr()))
          Chis.push_back({Loc, ChiKind::Store});
      } else if (const auto *A = dyn_cast<AllocInst>(I.get())) {
        auto &Chis = ChiLocs[I.get()];
        for (unsigned Loc : PA.locsOfObject(A->getObject()))
          Chis.push_back({Loc, ChiKind::Alloc});
      } else if (const auto *Call = dyn_cast<CallInst>(I.get())) {
        // Reads feed the callee's virtual input parameters; writes become
        // chis whose old version doubles as the input for mod-only
        // locations. Clone locations are "allocated" here and take no
        // input at all.
        std::unordered_set<uint32_t> CloneLocs;
        for (const MemObject *Clone : PA.clonesAt(Call))
          for (unsigned Loc : PA.locsOfObject(Clone))
            CloneLocs.insert(Loc);
        auto &Mus = MuLocs[I.get()];
        MR.refAt(Call).forEach([&](size_t Loc) {
          if (!CloneLocs.count(static_cast<uint32_t>(Loc)))
            Mus.push_back(static_cast<uint32_t>(Loc));
        });
        auto &Chis = ChiLocs[I.get()];
        MR.modAt(Call).forEach([&](size_t Loc) {
          ChiKind Kind = CloneLocs.count(static_cast<uint32_t>(Loc))
                             ? ChiKind::CloneAlloc
                             : ChiKind::CallMod;
          Chis.push_back({static_cast<uint32_t>(Loc), Kind});
        });
      } else if (isa<RetInst>(I.get())) {
        // Virtual output parameters are read at every return.
        MuLocs[I.get()] = S.FormalOut;
      }
    }
  }
}

void FunctionSSA::Builder::placePhis() {
  // Enumerate keys: all top-level variables plus all formal-in locations.
  for (const auto &V : F.variables())
    AllKeys.push_back({Space::TopLevel, V->getId()});
  for (uint32_t Loc : S.FormalIn)
    AllKeys.push_back({Space::Memory, Loc});

  // Version 0 (live-on-entry) exists for every key.
  for (VarKey Key : AllKeys)
    freshVersion(Key, DefDesc{DefDesc::Kind::Entry, nullptr, nullptr, 0});

  // Record def blocks.
  const BasicBlock *Entry = F.getEntry();
  for (VarKey Key : AllKeys)
    DefBlocks[Key].push_back(Entry);
  for (const auto &BB : F.blocks()) {
    if (!S.CFG.isReachable(BB->getId()))
      continue;
    for (const auto &I : BB->instructions()) {
      if (const Variable *Def = I->getDef())
        DefBlocks[{Space::TopLevel, Def->getId()}].push_back(BB.get());
      auto ChiIt = ChiLocs.find(I.get());
      if (ChiIt != ChiLocs.end())
        for (const auto &[Loc, Kind] : ChiIt->second)
          DefBlocks[{Space::Memory, Loc}].push_back(BB.get());
    }
  }

  // Iterated dominance frontier per key.
  const size_t NumBlocks = F.blocks().size();
  std::vector<uint8_t> HasPhi(NumBlocks), InWork(NumBlocks);
  for (VarKey Key : AllKeys) {
    std::fill(HasPhi.begin(), HasPhi.end(), 0);
    std::fill(InWork.begin(), InWork.end(), 0);
    std::vector<const BasicBlock *> Work;
    for (const BasicBlock *BB : DefBlocks[Key]) {
      if (!InWork[BB->getId()]) {
        InWork[BB->getId()] = 1;
        Work.push_back(BB);
      }
    }
    while (!Work.empty()) {
      const BasicBlock *BB = Work.back();
      Work.pop_back();
      for (const BasicBlock *Frontier : S.DF.frontier(BB)) {
        if (HasPhi[Frontier->getId()])
          continue;
        HasPhi[Frontier->getId()] = 1;
        PhiNode Phi;
        Phi.Var = Key;
        Phi.ResultVersion = 0; // Assigned during renaming.
        S.Phis[Frontier].push_back(std::move(Phi));
        if (!InWork[Frontier->getId()]) {
          InWork[Frontier->getId()] = 1;
          Work.push_back(Frontier);
        }
      }
    }
  }
}

void FunctionSSA::Builder::rename() {
  std::unordered_map<VarKey, std::vector<uint32_t>, VarKeyHash> Stacks;
  for (VarKey Key : AllKeys)
    Stacks[Key] = {0};

  auto Top = [&](VarKey Key) {
    auto It = Stacks.find(Key);
    assert(It != Stacks.end() && !It->second.empty() && "missing stack");
    return It->second.back();
  };

  struct Frame {
    const BasicBlock *BB;
    size_t NextChild;
    size_t TrailStart;
  };
  std::vector<VarKey> Trail; // Keys pushed, for undo on frame exit.

  auto ProcessBlock = [&](const BasicBlock *BB) {
    // Phis assign their results first.
    auto PhiIt = S.Phis.find(BB);
    if (PhiIt != S.Phis.end()) {
      for (size_t Idx = 0; Idx != PhiIt->second.size(); ++Idx) {
        PhiNode &Phi = PhiIt->second[Idx];
        uint32_t V = freshVersion(
            Phi.Var, DefDesc{DefDesc::Kind::Phi, nullptr, BB,
                             static_cast<uint32_t>(Idx)});
        Phi.ResultVersion = V;
        Stacks[Phi.Var].push_back(V);
        Trail.push_back(Phi.Var);
      }
    }

    for (const auto &I : BB->instructions()) {
      InstSSA &Info = S.Insts[I.get()];

      // Uses (top-level, then mus) read the current versions.
      std::vector<Variable *> Used;
      I->collectUsedVars(Used);
      std::sort(Used.begin(), Used.end(),
                [](const Variable *A, const Variable *B) {
                  return A->getId() < B->getId();
                });
      Used.erase(std::unique(Used.begin(), Used.end()), Used.end());
      for (const Variable *V : Used)
        Info.TLUses.push_back({V, Top({Space::TopLevel, V->getId()})});
      auto MuIt = MuLocs.find(I.get());
      if (MuIt != MuLocs.end())
        for (uint32_t Loc : MuIt->second)
          Info.Mus.push_back({Loc, Top({Space::Memory, Loc})});

      // Defs create fresh versions.
      if (const Variable *Def = I->getDef()) {
        VarKey Key{Space::TopLevel, Def->getId()};
        uint32_t V =
            freshVersion(Key, DefDesc{DefDesc::Kind::Inst, I.get(), nullptr,
                                      0});
        Info.TLDefVersion = V;
        Stacks[Key].push_back(V);
        Trail.push_back(Key);
      }
      auto ChiIt = ChiLocs.find(I.get());
      if (ChiIt != ChiLocs.end()) {
        for (const auto &[Loc, Kind] : ChiIt->second) {
          VarKey Key{Space::Memory, Loc};
          uint32_t Old = Top(Key);
          uint32_t New =
              freshVersion(Key, DefDesc{DefDesc::Kind::Inst, I.get(),
                                        nullptr, 0});
          Info.Chis.push_back({Loc, New, Old, Kind});
          Stacks[Key].push_back(New);
          Trail.push_back(Key);
        }
      }
    }

    // Feed phi operands of CFG successors.
    std::vector<BasicBlock *> Succs;
    BB->getSuccessors(Succs);
    for (const BasicBlock *Succ : Succs) {
      auto SuccPhiIt = S.Phis.find(Succ);
      if (SuccPhiIt == S.Phis.end())
        continue;
      for (PhiNode &Phi : SuccPhiIt->second)
        Phi.Incoming.push_back({BB, Top(Phi.Var)});
    }
  };

  std::vector<Frame> DFS;
  const BasicBlock *Entry = F.getEntry();
  DFS.push_back({Entry, 0, Trail.size()});
  ProcessBlock(Entry);
  while (!DFS.empty()) {
    Frame &Cur = DFS.back();
    const auto &Kids = S.DT.children(Cur.BB);
    if (Cur.NextChild < Kids.size()) {
      const BasicBlock *Child = Kids[Cur.NextChild++];
      DFS.push_back({Child, 0, Trail.size()});
      ProcessBlock(Child);
      continue;
    }
    // Undo this frame's version pushes.
    while (Trail.size() > Cur.TrailStart) {
      Stacks[Trail.back()].pop_back();
      Trail.pop_back();
    }
    DFS.pop_back();
  }
}

void FunctionSSA::Builder::run() {
  collectFormals();
  placeMuChi();
  placePhis();
  rename();
}

FunctionSSA::FunctionSSA(const Function &F, const PointerAnalysis &PA,
                         const ModRefAnalysis &MR)
    : F(F), CFG(F), DT(CFG), DF(DT) {
  Builder(*this, PA, MR).run();
}

MemorySSA::MemorySSA(const Module &M, const PointerAnalysis &PA,
                     const ModRefAnalysis &MR, ThreadPool *Pool) {
  // Each FunctionSSA (CFG, dominator tree, frontiers, mu/chi/phi overlay)
  // depends only on its own function plus the immutable PA/MR results, so
  // the builds are embarrassingly parallel; slots are merged in module
  // function order.
  std::vector<const Function *> Order;
  for (const auto &F : M.functions())
    Order.push_back(F.get());
  std::vector<std::unique_ptr<FunctionSSA>> Built =
      parallelMapOrdered(Pool, Order.size(), [&](size_t I) {
        return std::make_unique<FunctionSSA>(*Order[I], PA, MR);
      });
  for (size_t I = 0; I != Order.size(); ++I)
    Funcs[Order[I]] = std::move(Built[I]);
}
