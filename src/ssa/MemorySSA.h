//===- ssa/MemorySSA.h - Memory SSA construction ----------------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memory SSA over TinyC (Section 3.1 / Figure 4 of the paper): every
/// function is put in SSA form for both top-level variables and
/// address-taken variables (PtLocs). The IR itself is not rewritten;
/// the SSA form is an overlay:
///
///  - loads carry mu(rho) uses for every location the pointer may read;
///  - stores carry rho_m := chi(rho_n) defs for every location the pointer
///    may write;
///  - allocation sites carry chi defs for the fields of the fresh object;
///  - call sites carry mus for everything the callee may read or modify
///    and chis for everything it may modify (with wrapper clones
///    substituted, acting as callsite allocation chis);
///  - returns carry mus reading the virtual output parameters;
///  - phis merge versions of both spaces at join points.
///
/// Version 0 of every variable is its live-on-entry value: the formal
/// parameter for top-level params, "undefined at entry" for other
/// top-level variables, and the virtual input parameter (or the initial
/// global/dead state in main) for memory locations.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_SSA_MEMORYSSA_H
#define USHER_SSA_MEMORYSSA_H

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "support/ThreadPool.h"

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace usher {
namespace ir {
class Function;
class Instruction;
class Module;
class Variable;
} // namespace ir

namespace analysis {
class CallGraph;
class ModRefAnalysis;
class PointerAnalysis;
} // namespace analysis

namespace ssa {

/// Which SSA space a variable lives in.
enum class Space : uint8_t {
  TopLevel, ///< Var_TL: id is ir::Variable::getId() within its function.
  Memory    ///< Var_AT: id is a module-wide PtLoc id.
};

/// A versioned variable reference local to one function.
struct VarKey {
  Space Sp;
  uint32_t Id;

  bool operator==(const VarKey &O) const { return Sp == O.Sp && Id == O.Id; }
};

struct VarKeyHash {
  size_t operator()(const VarKey &K) const {
    return (static_cast<size_t>(K.Sp) << 31) ^ K.Id;
  }
};

/// A mu: a potential indirect use of a memory location.
struct MemUse {
  uint32_t Loc;
  uint32_t Version;
};

/// How a chi came to exist; the VFG builder gives each kind different
/// edges and strong-update opportunities.
enum class ChiKind : uint8_t {
  Store,     ///< Indirect def at a store.
  Alloc,     ///< Definition of a fresh object's field at its alloc site.
  CallMod,   ///< Callee may modify this location.
  CloneAlloc ///< Wrapper call site acting as the clone's allocation.
};

/// A chi: a potential indirect def (and use of the previous version).
struct MemDef {
  uint32_t Loc;
  uint32_t NewVersion;
  uint32_t OldVersion;
  ChiKind Kind;
};

/// The version of one top-level variable used by an instruction.
struct TLUse {
  const ir::Variable *Var;
  uint32_t Version;
};

/// SSA annotations of one instruction.
struct InstSSA {
  /// Version assigned to the instruction's top-level def (if any).
  uint32_t TLDefVersion = 0;
  /// One entry per distinct top-level variable the instruction reads.
  std::vector<TLUse> TLUses;
  std::vector<MemUse> Mus;
  std::vector<MemDef> Chis;
};

/// A phi at a block start, for either space.
struct PhiNode {
  VarKey Var;
  uint32_t ResultVersion;
  /// One (pred, version) pair per CFG predecessor.
  std::vector<std::pair<const ir::BasicBlock *, uint32_t>> Incoming;
};

/// Where a particular SSA version is defined.
struct DefDesc {
  enum class Kind : uint8_t { Entry, Inst, Phi };
  Kind K = Kind::Entry;
  const ir::Instruction *I = nullptr;      ///< For Kind::Inst.
  const ir::BasicBlock *PhiBlock = nullptr; ///< For Kind::Phi.
  uint32_t PhiIdx = 0;                      ///< Index into phisIn(PhiBlock).
};

/// SSA form of a single function.
class FunctionSSA {
public:
  FunctionSSA(const ir::Function &F, const analysis::PointerAnalysis &PA,
              const analysis::ModRefAnalysis &MR);

  const ir::Function &getFunction() const { return F; }
  const analysis::CFGInfo &getCFG() const { return CFG; }
  const analysis::DominatorTree &getDomTree() const { return DT; }

  /// SSA annotations of \p I; null for instructions in unreachable blocks.
  const InstSSA *instInfo(const ir::Instruction *I) const {
    auto It = Insts.find(I);
    return It == Insts.end() ? nullptr : &It->second;
  }

  /// Phis at the start of \p BB (possibly empty).
  const std::vector<PhiNode> &phisIn(const ir::BasicBlock *BB) const;

  /// Definition site of version \p Version of \p Key.
  const DefDesc &defOf(VarKey Key, uint32_t Version) const;

  /// Number of versions of \p Key (0 if the variable never materialized).
  uint32_t numVersions(VarKey Key) const {
    auto It = Defs.find(Key);
    return It == Defs.end() ? 0 : static_cast<uint32_t>(It->second.size());
  }

  /// Memory locations live on entry (virtual input parameters): every
  /// location the function may read or modify.
  const std::vector<uint32_t> &formalIns() const { return FormalIn; }

  /// Memory locations whose final versions are the virtual output
  /// parameters: everything the function may modify. Their versions at a
  /// particular return are the Mus of that RetInst.
  const std::vector<uint32_t> &formalOuts() const { return FormalOut; }

  /// All variable keys that materialized in this function.
  std::vector<VarKey> allKeys() const;

private:
  class Builder;

  const ir::Function &F;
  analysis::CFGInfo CFG;
  analysis::DominatorTree DT;
  analysis::DominanceFrontier DF;

  std::unordered_map<const ir::Instruction *, InstSSA> Insts;
  std::unordered_map<const ir::BasicBlock *, std::vector<PhiNode>> Phis;
  std::unordered_map<VarKey, std::vector<DefDesc>, VarKeyHash> Defs;
  std::vector<uint32_t> FormalIn, FormalOut;

  static const std::vector<PhiNode> EmptyPhis;
};

/// Memory SSA for every function in a module.
class MemorySSA {
public:
  /// Builds per-function SSA overlays. With a non-null \p Pool the
  /// functions are built in parallel — each FunctionSSA reads only the
  /// immutable module/PA/MR and writes only its own overlay, and the
  /// overlays are deposited in module function order, so the result is
  /// identical to a serial build.
  MemorySSA(const ir::Module &M, const analysis::PointerAnalysis &PA,
            const analysis::ModRefAnalysis &MR, ThreadPool *Pool = nullptr);

  const FunctionSSA &get(const ir::Function *F) const {
    return *Funcs.at(F);
  }

private:
  std::unordered_map<const ir::Function *, std::unique_ptr<FunctionSSA>>
      Funcs;
};

} // namespace ssa
} // namespace usher

#endif // USHER_SSA_MEMORYSSA_H
