//===- bench/bench_phases.cpp - Analysis phase microbenchmarks -------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark timings of the pipeline phases (the decomposition of
/// Table 1's Time column) on generated programs of growing size, plus the
/// whole pipeline on the largest suite programs. Demonstrates that the
/// analysis stays "reasonably lightweight" (Section 4.4).
///
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "analysis/ModRef.h"
#include "analysis/PointerAnalysis.h"
#include "core/Definedness.h"
#include "core/Instrumentation.h"
#include "core/Usher.h"
#include "ssa/MemorySSA.h"
#include "vfg/VFG.h"
#include "workload/Generator.h"
#include "workload/Spec2000.h"

#include <benchmark/benchmark.h>

using namespace usher;

namespace {

workload::GeneratorOptions scaled(unsigned Functions) {
  workload::GeneratorOptions Opts;
  Opts.NumFunctions = Functions;
  Opts.MaxSegmentsPerFn = 8;
  return Opts;
}

void BM_PointerAnalysis(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    auto M = workload::generateProgram(1, scaled(State.range(0)));
    analysis::CallGraph CG(*M);
    State.ResumeTiming();
    analysis::PointerAnalysis PA(*M, CG);
    benchmark::DoNotOptimize(PA.numLocations());
  }
}
BENCHMARK(BM_PointerAnalysis)->Arg(4)->Arg(16)->Arg(64);

void BM_MemorySSA(benchmark::State &State) {
  auto M = workload::generateProgram(2, scaled(State.range(0)));
  analysis::CallGraph CG(*M);
  analysis::PointerAnalysis PA(*M, CG);
  analysis::ModRefAnalysis MR(*M, CG, PA);
  for (auto _ : State) {
    ssa::MemorySSA SSA(*M, PA, MR);
    benchmark::DoNotOptimize(&SSA);
  }
}
BENCHMARK(BM_MemorySSA)->Arg(4)->Arg(16)->Arg(64);

void BM_VFGBuild(benchmark::State &State) {
  auto M = workload::generateProgram(3, scaled(State.range(0)));
  analysis::CallGraph CG(*M);
  analysis::PointerAnalysis PA(*M, CG);
  analysis::ModRefAnalysis MR(*M, CG, PA);
  ssa::MemorySSA SSA(*M, PA, MR);
  for (auto _ : State) {
    vfg::VFG G = vfg::VFGBuilder(*M, SSA, PA, CG).build();
    benchmark::DoNotOptimize(G.numNodes());
  }
}
BENCHMARK(BM_VFGBuild)->Arg(4)->Arg(16)->Arg(64);

void BM_DefinednessResolution(benchmark::State &State) {
  auto M = workload::generateProgram(4, scaled(State.range(0)));
  analysis::CallGraph CG(*M);
  analysis::PointerAnalysis PA(*M, CG);
  analysis::ModRefAnalysis MR(*M, CG, PA);
  ssa::MemorySSA SSA(*M, PA, MR);
  vfg::VFG G = vfg::VFGBuilder(*M, SSA, PA, CG).build();
  for (auto _ : State) {
    core::Definedness Gamma(G, core::DefinednessOptions());
    benchmark::DoNotOptimize(Gamma.numUndefinedNodes());
  }
}
BENCHMARK(BM_DefinednessResolution)->Arg(4)->Arg(16)->Arg(64);

void BM_GuidedInstrumentation(benchmark::State &State) {
  auto M = workload::generateProgram(5, scaled(State.range(0)));
  analysis::CallGraph CG(*M);
  analysis::PointerAnalysis PA(*M, CG);
  analysis::ModRefAnalysis MR(*M, CG, PA);
  ssa::MemorySSA SSA(*M, PA, MR);
  vfg::VFG G = vfg::VFGBuilder(*M, SSA, PA, CG).build();
  core::Definedness Gamma(G, core::DefinednessOptions());
  for (auto _ : State) {
    core::InstrumentationPlanner Planner(*M, SSA, G, Gamma,
                                         core::PlannerOptions());
    core::InstrumentationPlan Plan = Planner.run();
    benchmark::DoNotOptimize(Plan.countChecks());
  }
}
BENCHMARK(BM_GuidedInstrumentation)->Arg(4)->Arg(16)->Arg(64);

void BM_WholePipelineOnSuite(benchmark::State &State) {
  const auto &B = workload::spec2000Suite()[State.range(0)];
  State.SetLabel(B.Name);
  for (auto _ : State) {
    auto M = workload::loadBenchmark(B);
    core::UsherResult R = core::runUsher(*M, core::UsherOptions());
    benchmark::DoNotOptimize(R.Plan.countChecks());
  }
}
BENCHMARK(BM_WholePipelineOnSuite)->DenseRange(0, 14);

} // namespace

BENCHMARK_MAIN();
