//===- bench/bench_ablation.cpp - Design-choice ablations ------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablations for the design choices the paper calls out:
///  - semi-strong updates on/off (Section 3.2's novel update flavor);
///  - context sensitivity k = 0 / 1 / 2 in definedness resolution
///    (Section 3.3; the paper configures k = 1);
///  - field sensitivity on/off and heap cloning on/off in the pointer
///    analysis (Section 4.1 / 5.4).
///
/// Reported as the full-Usher average slowdown over the suite (lower is
/// better; soundness is unaffected by construction).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace usher;
using namespace usher::bench;

namespace {

double averageSlowdown(const core::UsherOptions &Base) {
  double Sum = 0;
  for (const auto &B : workload::spec2000Suite()) {
    RunResult R = runBenchmark(B, transforms::OptPreset::O0IM,
                               core::ToolVariant::UsherFull, Base);
    Sum += R.Report.slowdownPercent();
  }
  return Sum / workload::spec2000Suite().size();
}

} // namespace

int main() {
  std::printf("Ablations: average USHER slowdown (%%) over the suite, "
              "O0+IM\n\n");

  core::UsherOptions Default;
  double Baseline = averageSlowdown(Default);
  std::printf("%-44s %7.1f%%\n", "baseline (paper configuration)", Baseline);

  {
    core::UsherOptions O;
    O.Vfg.SemiStrongUpdates = false;
    std::printf("%-44s %7.1f%%\n", "without semi-strong updates",
                averageSlowdown(O));
  }
  {
    core::UsherOptions O;
    O.Vfg.SemiStrongUpdates = false;
    O.Vfg.StrongUpdates = false;
    std::printf("%-44s %7.1f%%\n", "without any strong updates",
                averageSlowdown(O));
  }
  {
    core::UsherOptions O;
    O.ContextK = 0;
    std::printf("%-44s %7.1f%%\n", "context-insensitive resolution (k=0)",
                averageSlowdown(O));
  }
  {
    core::UsherOptions O;
    O.ContextK = 2;
    std::printf("%-44s %7.1f%%\n", "2-callsite-sensitive resolution (k=2)",
                averageSlowdown(O));
  }
  {
    core::UsherOptions O;
    O.Pta.FieldSensitive = false;
    std::printf("%-44s %7.1f%%\n", "field-insensitive pointer analysis",
                averageSlowdown(O));
  }
  {
    core::UsherOptions O;
    O.Pta.HeapCloning = false;
    std::printf("%-44s %7.1f%%\n", "without heap cloning",
                averageSlowdown(O));
  }
  return 0;
}
