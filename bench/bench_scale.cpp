//===- bench/bench_scale.cpp - Pipeline scaling curves ---------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures how every pipeline phase scales with program size, using the
/// workload synthesizer (workload/Synthesizer.h) as the size dial: four
/// shape specs spanning roughly 1k to well past 100k VFG nodes, each run
/// through four analysis configurations:
///
///   andersen-global     the reference pipeline (serial),
///   andersen-global-j2  the same pipeline on a 2-worker pool,
///   unify-global        the near-linear unification solver rung,
///   andersen-summary    the bottom-up summary engine.
///
/// Per size and configuration the JSON (schema usher-bench-scale-v1,
/// validated by tools/check_bench_json.py) records wall time for parse,
/// mem2reg (the O1 preset), and each runUsher phase (pointer analysis,
/// memory SSA, VFG, definedness, Opt II), plus peak RSS — the raw data
/// behind the scaling-curve analysis in EXPERIMENTS.md.
///
/// Because every configuration analyzes the *same* program, the harness
/// cross-checks answers, not just times: the serial and --jobs=2 runs
/// must produce identical fingerprints (plan counts + VFG shape), the
/// summary engine must match the global engine exactly, and the unify
/// rung — a sound over-approximation — must report the same runtime
/// warnings with at least as many planned checks. Any mismatch aborts:
/// a curve bought with a different answer is a bug, not a result.
///
/// Usage: bench_scale [--smoke] [--out=FILE]
///   --smoke     two smallest sizes, single iteration; used by the
///               bench-smoke ctest.
///   --out=FILE  where to write the JSON (default: BENCH_scale.json).
///
//===----------------------------------------------------------------------===//

#include "core/Usher.h"
#include "parser/Parser.h"
#include "runtime/Interpreter.h"
#include "support/ThreadPool.h"
#include "transforms/Transforms.h"
#include "workload/Synthesizer.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace usher;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - T0).count();
}

/// One size rung of the scaling ladder. The smallest rung uses a shallow
/// shape: the default 6-deep/3-wide call graph has a ~25-function skeleton
/// whose VFG floor is ~9k nodes, so "about 1k nodes" needs fewer
/// functions, not just a smaller target.
struct SizeSpec {
  const char *Name;
  workload::ShapeSpec Shape;
};

std::vector<SizeSpec> sizeLadder() {
  std::vector<SizeSpec> Sizes;
  {
    workload::ShapeSpec S;
    S.TargetNodes = 2'000;
    S.CallDepth = 2;
    S.Fanout = 2;
    S.RecursionRings = 1;
    S.RingSize = 2;
    Sizes.push_back({"tiny", S});
  }
  {
    workload::ShapeSpec S;
    S.TargetNodes = 10'000;
    Sizes.push_back({"small", S});
  }
  {
    workload::ShapeSpec S;
    S.TargetNodes = 40'000;
    Sizes.push_back({"medium", S});
  }
  {
    // Calibrated to land comfortably past the 100k-node mark (the dial
    // undershoots by ~3% at this scale).
    workload::ShapeSpec S;
    S.TargetNodes = 150'000;
    Sizes.push_back({"large", S});
  }
  return Sizes;
}

/// Everything the analysis decided plus everything the instrumented run
/// observed. Configurations that must agree compare the whole struct;
/// the unify rung compares only the Run* members (its plan is allowed to
/// be coarser, its answers are not).
struct Fingerprint {
  uint64_t Checks = 0;
  uint64_t ShadowOps = 0;
  uint64_t VFGNodes = 0;
  uint64_t VFGEdges = 0;
  uint64_t Redirected = 0;
  int64_t RunResult = 0;
  std::vector<std::string> RunWarnings; ///< Sorted warningSiteKey()s.
  bool operator==(const Fingerprint &O) const = default;
  bool sameRun(const Fingerprint &O) const {
    return RunResult == O.RunResult && RunWarnings == O.RunWarnings;
  }
};

struct ConfigRow {
  std::string Name;
  double ParseMs = 0;
  double Mem2RegMs = 0;
  double AnalyzeMs = 0; ///< runUsher wall time (sum of the phases).
  double PtaMs = 0;
  double SsaMs = 0;
  double VfgMs = 0;
  double DefinednessMs = 0;
  double Opt2Ms = 0;
  uint64_t PeakRSSBytes = 0;
  Fingerprint FP;
};

struct SizeRow {
  std::string Name;
  unsigned TargetNodes = 0;
  double SynthesizeMs = 0;
  uint64_t Functions = 0;
  uint64_t Instructions = 0;
  std::vector<ConfigRow> Configs;
};

struct Config {
  const char *Name;
  analysis::SolverKind Solver;
  core::EngineKind Engine;
  unsigned Jobs;
};

constexpr Config Configs[] = {
    {"andersen-global", analysis::SolverKind::Optimized,
     core::EngineKind::Global, 1},
    {"andersen-global-j2", analysis::SolverKind::Optimized,
     core::EngineKind::Global, 2},
    {"unify-global", analysis::SolverKind::Unify, core::EngineKind::Global, 1},
    {"andersen-summary", analysis::SolverKind::Optimized,
     core::EngineKind::Summary, 1},
};

double phaseMs(const core::UsherResult &UR, const char *Key) {
  auto It = UR.Stats.PhaseSeconds.find(Key);
  return It == UR.Stats.PhaseSeconds.end() ? 0.0 : It->second * 1000.0;
}

/// One full pipeline + instrumented execution of \p Source under \p C.
/// Parses fresh per iteration (the preset and heap cloning mutate the
/// module); times are best-of-\p Iters, the fingerprint must reproduce.
ConfigRow runConfig(const std::string &Source, const Config &C,
                    unsigned Iters) {
  ConfigRow Row;
  Row.Name = C.Name;
  double BestTotal = 1e100;
  for (unsigned It = 0; It != Iters; ++It) {
    auto T0 = Clock::now();
    parser::ParseResult PR = parser::parseModule(Source);
    double ParseMs = msSince(T0);
    if (!PR.succeeded()) {
      std::fprintf(stderr, "FATAL: synthesized program failed to parse\n");
      std::abort();
    }

    std::unique_ptr<ThreadPool> Pool;
    if (C.Jobs > 1)
      Pool = std::make_unique<ThreadPool>(C.Jobs);
    T0 = Clock::now();
    transforms::runPreset(*PR.M, transforms::OptPreset::O1, Pool.get());
    double Mem2RegMs = msSince(T0);

    core::UsherOptions Opts;
    Opts.Variant = core::ToolVariant::UsherFull;
    Opts.Pta.Solver = C.Solver;
    Opts.Engine = C.Engine;
    Opts.Jobs = C.Jobs;
    T0 = Clock::now();
    core::UsherResult UR = core::runUsher(*PR.M, Opts);
    double AnalyzeMs = msSince(T0);
    if (UR.Degradation.Degraded) {
      std::fprintf(stderr, "FATAL: %s degraded with no budget armed\n",
                   C.Name);
      std::abort();
    }

    runtime::ExecutionReport Rep =
        runtime::Interpreter(*PR.M, &UR.Plan).run();
    if (Rep.Reason != runtime::ExitReason::Finished) {
      std::fprintf(stderr, "FATAL: %s: run did not finish: %s\n", C.Name,
                   Rep.TrapMessage.c_str());
      std::abort();
    }

    Fingerprint FP;
    FP.Checks = UR.Plan.countChecks();
    FP.ShadowOps = UR.Plan.countShadowOps();
    FP.VFGNodes = UR.Stats.NumVFGNodes;
    FP.VFGEdges = UR.Stats.NumVFGEdges;
    FP.Redirected = UR.Stats.NumRedirectedNodes;
    FP.RunResult = Rep.MainResult;
    for (const runtime::Warning &W : Rep.ToolWarnings)
      FP.RunWarnings.push_back(workload::warningSiteKey(W.At));
    std::sort(FP.RunWarnings.begin(), FP.RunWarnings.end());
    if (It > 0 && !(FP == Row.FP)) {
      std::fprintf(stderr,
                   "FATAL: %s: analysis not reproducible across iterations\n",
                   C.Name);
      std::abort();
    }
    Row.FP = std::move(FP);

    if (AnalyzeMs < BestTotal) {
      BestTotal = AnalyzeMs;
      Row.ParseMs = ParseMs;
      Row.Mem2RegMs = Mem2RegMs;
      Row.AnalyzeMs = AnalyzeMs;
      Row.PtaMs = phaseMs(UR, "1.pointer-analysis");
      Row.SsaMs = phaseMs(UR, "2.memory-ssa");
      Row.VfgMs = phaseMs(UR, "3.vfg");
      Row.DefinednessMs = phaseMs(UR, "4.definedness");
      Row.Opt2Ms = phaseMs(UR, "5.opt2");
      Row.PeakRSSBytes = UR.Stats.PeakRSSBytes;
    }
  }
  return Row;
}

void printConfigJson(std::FILE *F, const ConfigRow &R, bool Last) {
  std::fprintf(
      F,
      "        {\"name\": \"%s\", \"parse_ms\": %.4f, \"mem2reg_ms\": %.4f, "
      "\"analyze_ms\": %.4f, \"peak_rss_bytes\": %llu,\n"
      "         \"phases\": {\"pointer_analysis_ms\": %.4f, "
      "\"memory_ssa_ms\": %.4f, \"vfg_ms\": %.4f, "
      "\"definedness_ms\": %.4f, \"opt2_ms\": %.4f},\n"
      "         \"vfg_nodes\": %llu, \"vfg_edges\": %llu, "
      "\"checks\": %llu, \"shadow_ops\": %llu, "
      "\"warning_sites\": %zu}%s\n",
      R.Name.c_str(), R.ParseMs, R.Mem2RegMs, R.AnalyzeMs,
      static_cast<unsigned long long>(R.PeakRSSBytes), R.PtaMs, R.SsaMs,
      R.VfgMs, R.DefinednessMs, R.Opt2Ms,
      static_cast<unsigned long long>(R.FP.VFGNodes),
      static_cast<unsigned long long>(R.FP.VFGEdges),
      static_cast<unsigned long long>(R.FP.Checks),
      static_cast<unsigned long long>(R.FP.ShadowOps),
      R.FP.RunWarnings.size(), Last ? "" : ",");
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  std::string OutPath = "BENCH_scale.json";
  for (int I = 1; I != argc; ++I) {
    if (std::strcmp(argv[I], "--smoke") == 0) {
      Smoke = true;
    } else if (std::strncmp(argv[I], "--out=", 6) == 0) {
      OutPath = argv[I] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=FILE]\n", argv[0]);
      return 2;
    }
  }

  const unsigned Iters = Smoke ? 1 : 2;
  std::vector<SizeSpec> Sizes = sizeLadder();
  if (Smoke)
    Sizes.resize(2); // tiny + small: the curve's shape, not its reach.

  std::vector<SizeRow> Rows;
  for (const SizeSpec &S : Sizes) {
    SizeRow Row;
    Row.Name = S.Name;
    Row.TargetNodes = S.Shape.TargetNodes;

    auto T0 = Clock::now();
    std::string Source = workload::synthesizeProgram(S.Shape);
    Row.SynthesizeMs = msSince(T0);

    {
      parser::ParseResult PR = parser::parseModule(Source);
      if (!PR.succeeded()) {
        std::fprintf(stderr, "FATAL: %s failed to parse\n", S.Name);
        return 1;
      }
      workload::ShapeMetrics Met = workload::measureShape(*PR.M);
      Row.Functions = Met.NumFunctions;
      Row.Instructions = Met.NumInstructions;
    }

    for (const Config &C : Configs)
      Row.Configs.push_back(runConfig(Source, C, Iters));

    // Answer cross-checks. Index 0 is the reference configuration.
    const Fingerprint &Ref = Row.Configs[0].FP;
    if (!(Row.Configs[1].FP == Ref)) {
      std::fprintf(stderr, "FATAL: %s: --jobs=2 diverged from serial\n",
                   S.Name);
      std::abort();
    }
    if (!(Row.Configs[3].FP == Ref)) {
      std::fprintf(stderr,
                   "FATAL: %s: --engine=summary diverged from global\n",
                   S.Name);
      std::abort();
    }
    const Fingerprint &Unify = Row.Configs[2].FP;
    if (!Unify.sameRun(Ref) || Unify.Checks < Ref.Checks) {
      std::fprintf(stderr,
                   "FATAL: %s: unify rung changed the answer "
                   "(or elided checks unsoundly)\n",
                   S.Name);
      std::abort();
    }

    std::printf("%-8s %8llu instrs %9llu nodes", Row.Name.c_str(),
                static_cast<unsigned long long>(Row.Instructions),
                static_cast<unsigned long long>(Ref.VFGNodes));
    for (const ConfigRow &C : Row.Configs)
      std::printf("  %s=%.0fms", C.Name.c_str(), C.AnalyzeMs);
    std::printf("\n");
    Rows.push_back(std::move(Row));
  }

  // The ladder must actually climb: strictly more VFG nodes per rung.
  for (size_t I = 1; I != Rows.size(); ++I) {
    if (Rows[I].Configs[0].FP.VFGNodes <=
        Rows[I - 1].Configs[0].FP.VFGNodes) {
      std::fprintf(stderr, "FATAL: size ladder is not monotone\n");
      std::abort();
    }
  }

  std::FILE *F = std::fopen(OutPath.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(F, "{\n  \"schema\": \"usher-bench-scale-v1\",\n");
  std::fprintf(F, "  \"smoke\": %s,\n", Smoke ? "true" : "false");
  std::fprintf(F, "  \"iterations\": %u,\n", Iters);
  std::fprintf(F, "  \"hardware_concurrency\": %u,\n",
               ThreadPool::defaultJobs());
  std::fprintf(F, "  \"sizes\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const SizeRow &Row = Rows[I];
    std::fprintf(F,
                 "    {\"name\": \"%s\", \"target_nodes\": %u, "
                 "\"synthesize_ms\": %.4f, \"functions\": %llu, "
                 "\"instructions\": %llu,\n"
                 "     \"fingerprints_equal\": true, "
                 "\"warnings_equal_all_configs\": true,\n"
                 "     \"configs\": [\n",
                 Row.Name.c_str(), Row.TargetNodes, Row.SynthesizeMs,
                 static_cast<unsigned long long>(Row.Functions),
                 static_cast<unsigned long long>(Row.Instructions));
    for (size_t J = 0; J != Row.Configs.size(); ++J)
      printConfigJson(F, Row.Configs[J], J + 1 == Row.Configs.size());
    std::fprintf(F, "    ]}%s\n", I + 1 != Rows.size() ? "," : "");
  }
  std::fprintf(F, "  ],\n");
  std::fprintf(F,
               "  \"summary\": {\"min_vfg_nodes\": %llu, "
               "\"max_vfg_nodes\": %llu}\n}\n",
               static_cast<unsigned long long>(
                   Rows.front().Configs[0].FP.VFGNodes),
               static_cast<unsigned long long>(
                   Rows.back().Configs[0].FP.VFGNodes));
  std::fclose(F);
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
