//===- bench/bench_parallel.cpp - Parallel pipeline speedup ----------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Times the full analysis pipeline (preset + runUsher) at --jobs=1
/// against --jobs=<hardware concurrency> over the 15-program SPEC-like
/// suite and emits machine-readable BENCH_parallel.json (schema
/// usher-bench-parallel-v1, validated by tools/check_bench_json.py).
///
/// Because jobs=N is contractually byte-identical to jobs=1, the harness
/// also cross-checks an analysis fingerprint (plan counts + VFG shape)
/// between the two configurations and aborts on any mismatch: a speedup
/// bought with a different answer is a bug, not a result.
///
/// Each benchmark is additionally timed through the summary engine
/// (--engine=summary), whose parallel path schedules independent
/// call-graph SCCs on the pool; its fingerprint must match the global
/// engine's, and the JSON records summary_serial_ms/summary_parallel_ms
/// per row plus cores_available in the header.
///
/// On a single-core host the "parallel" configuration degenerates to the
/// pool scheduling the same work on one worker; the JSON records the
/// measured ratio and the jobs count honestly, and EXPERIMENTS.md
/// interprets it. No thresholds are baked in here.
///
/// Usage: bench_parallel [--smoke] [--jobs=N] [--out=FILE]
///   --smoke     first three suite programs, single timing iteration;
///               used by the bench-smoke ctest.
///   --jobs=N    parallel configuration's worker count (default: all
///               cores).
///   --out=FILE  where to write the JSON (default: BENCH_parallel.json).
///
//===----------------------------------------------------------------------===//

#include "core/Usher.h"
#include "support/ThreadPool.h"
#include "transforms/Transforms.h"
#include "workload/Spec2000.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace usher;

namespace {

/// Cheap deterministic digest of everything the analysis decided. Any
/// serial-vs-parallel divergence that matters shows up in at least one of
/// these counters.
struct Fingerprint {
  uint64_t Checks = 0;
  uint64_t ShadowOps = 0;
  uint64_t VFGNodes = 0;
  uint64_t VFGEdges = 0;
  uint64_t Redirected = 0;
  bool operator==(const Fingerprint &O) const = default;
};

struct ConfigResult {
  double AnalyzeMs = 1e100; ///< Best-of-iterations wall time.
  Fingerprint FP;
};

/// One full analysis of \p B at \p Jobs workers; parses fresh per
/// iteration (the preset and heap cloning mutate the module).
/// \p Engine selects the definedness resolution: the global fixpoint or
/// the summary engine, whose independent SCCs ride the same pool.
ConfigResult runConfig(const workload::BenchmarkProgram &B, unsigned Jobs,
                       unsigned Iters,
                       core::EngineKind Engine = core::EngineKind::Global) {
  ConfigResult R;
  for (unsigned It = 0; It != Iters; ++It) {
    auto M = workload::loadBenchmark(B);
    std::unique_ptr<ThreadPool> Pool;
    if (Jobs > 1)
      Pool = std::make_unique<ThreadPool>(Jobs);

    auto T0 = std::chrono::steady_clock::now();
    transforms::runPreset(*M, transforms::OptPreset::O1, Pool.get());
    core::UsherOptions Opts;
    Opts.Variant = core::ToolVariant::UsherFull;
    Opts.Jobs = Jobs;
    Opts.Engine = Engine;
    core::UsherResult UR = core::runUsher(*M, Opts);
    auto T1 = std::chrono::steady_clock::now();

    double Ms = std::chrono::duration<double, std::milli>(T1 - T0).count();
    Fingerprint FP{UR.Plan.countChecks(), UR.Plan.countShadowOps(),
                   UR.Stats.NumVFGNodes, UR.Stats.NumVFGEdges,
                   UR.Stats.NumRedirectedNodes};
    if (It > 0 && !(FP == R.FP)) {
      std::fprintf(stderr, "FATAL: %s: analysis not reproducible across "
                           "iterations at jobs=%u\n",
                   B.Name.c_str(), Jobs);
      std::abort();
    }
    R.FP = FP;
    if (Ms < R.AnalyzeMs)
      R.AnalyzeMs = Ms;
    if (UR.Degradation.Degraded) {
      std::fprintf(stderr, "FATAL: %s degraded with no budget armed\n",
                   B.Name.c_str());
      std::abort();
    }
  }
  return R;
}

struct BenchRow {
  std::string Name;
  ConfigResult Serial;
  ConfigResult Parallel;
  /// Same pipeline with --engine=summary: its per-SCC path schedules
  /// independent call-graph components on the pool instead of splitting
  /// one global worklist.
  ConfigResult SummarySerial;
  ConfigResult SummaryParallel;
  double speedup() const {
    return Parallel.AnalyzeMs > 0 ? Serial.AnalyzeMs / Parallel.AnalyzeMs : 0;
  }
  double summarySpeedup() const {
    return SummaryParallel.AnalyzeMs > 0
               ? SummarySerial.AnalyzeMs / SummaryParallel.AnalyzeMs
               : 0;
  }
};

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  unsigned Jobs = ThreadPool::defaultJobs();
  std::string OutPath = "BENCH_parallel.json";
  for (int I = 1; I != argc; ++I) {
    if (std::strcmp(argv[I], "--smoke") == 0) {
      Smoke = true;
    } else if (std::strncmp(argv[I], "--jobs=", 7) == 0) {
      Jobs = static_cast<unsigned>(std::strtoul(argv[I] + 7, nullptr, 10));
      if (Jobs == 0 || Jobs > 64) {
        std::fprintf(stderr, "bad --jobs value\n");
        return 2;
      }
    } else if (std::strncmp(argv[I], "--out=", 6) == 0) {
      OutPath = argv[I] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--jobs=N] [--out=FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  // A 1-core default still exercises the pool machinery: schedule the
  // "parallel" configuration on at least two workers.
  if (Jobs < 2)
    Jobs = 2;

  const unsigned Iters = Smoke ? 1 : 3;
  const std::vector<workload::BenchmarkProgram> &Suite =
      workload::spec2000Suite();
  const size_t Count = Smoke ? std::min<size_t>(3, Suite.size())
                             : Suite.size();

  std::printf("parallel configuration: %u workers (hardware: %u)\n", Jobs,
              ThreadPool::defaultJobs());
  std::printf("%-12s %12s %12s %8s %8s\n", "benchmark", "serial_ms",
              "parallel_ms", "speedup", "summary");
  std::vector<BenchRow> Rows;
  double MinSpeedup = 1e100, GeoAcc = 1.0, SummaryGeoAcc = 1.0;
  for (size_t I = 0; I != Count; ++I) {
    const workload::BenchmarkProgram &B = Suite[I];
    BenchRow Row;
    Row.Name = B.Name;
    Row.Serial = runConfig(B, 1, Iters);
    Row.Parallel = runConfig(B, Jobs, Iters);
    if (!(Row.Serial.FP == Row.Parallel.FP)) {
      std::fprintf(stderr,
                   "FATAL: %s: jobs=%u analysis diverged from serial\n",
                   B.Name.c_str(), Jobs);
      std::abort();
    }
    Row.SummarySerial = runConfig(B, 1, Iters, core::EngineKind::Summary);
    Row.SummaryParallel = runConfig(B, Jobs, Iters, core::EngineKind::Summary);
    // The summary engine must agree with itself across pool sizes AND
    // with the global engine: same plan, same VFG, same redirects.
    if (!(Row.SummarySerial.FP == Row.SummaryParallel.FP) ||
        !(Row.SummarySerial.FP == Row.Serial.FP)) {
      std::fprintf(stderr,
                   "FATAL: %s: --engine=summary diverged from global\n",
                   B.Name.c_str());
      std::abort();
    }
    std::printf("%-12s %12.3f %12.3f %7.2fx %7.2fx\n", Row.Name.c_str(),
                Row.Serial.AnalyzeMs, Row.Parallel.AnalyzeMs, Row.speedup(),
                Row.summarySpeedup());
    if (Row.speedup() < MinSpeedup)
      MinSpeedup = Row.speedup();
    GeoAcc *= Row.speedup();
    SummaryGeoAcc *= Row.summarySpeedup();
    Rows.push_back(std::move(Row));
  }
  double Geomean = Rows.empty() ? 0 : std::pow(GeoAcc, 1.0 / Rows.size());
  double SummaryGeomean =
      Rows.empty() ? 0 : std::pow(SummaryGeoAcc, 1.0 / Rows.size());
  std::printf("min speedup %.2fx, geomean %.2fx (summary engine %.2fx)%s\n",
              MinSpeedup, Geomean, SummaryGeomean,
              Smoke ? " (smoke sizes; not meaningful)" : "");

  std::FILE *F = std::fopen(OutPath.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(F, "{\n  \"schema\": \"usher-bench-parallel-v1\",\n");
  std::fprintf(F, "  \"smoke\": %s,\n", Smoke ? "true" : "false");
  std::fprintf(F, "  \"iterations\": %u,\n", Iters);
  std::fprintf(F, "  \"jobs\": %u,\n", Jobs);
  std::fprintf(F, "  \"hardware_concurrency\": %u,\n",
               ThreadPool::defaultJobs());
  std::fprintf(F, "  \"cores_available\": %u,\n",
               std::max(1u, std::thread::hardware_concurrency()));
  std::fprintf(F, "  \"benchmarks\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const BenchRow &Row = Rows[I];
    std::fprintf(F, "    {\"name\": \"%s\", \"serial_ms\": %.4f, "
                    "\"parallel_ms\": %.4f, \"speedup\": %.4f, "
                    "\"summary_serial_ms\": %.4f, "
                    "\"summary_parallel_ms\": %.4f, "
                    "\"summary_speedup\": %.4f, "
                    "\"vfg_nodes\": %llu, \"vfg_edges\": %llu, "
                    "\"checks\": %llu}%s\n",
                 Row.Name.c_str(), Row.Serial.AnalyzeMs,
                 Row.Parallel.AnalyzeMs, Row.speedup(),
                 Row.SummarySerial.AnalyzeMs, Row.SummaryParallel.AnalyzeMs,
                 Row.summarySpeedup(),
                 static_cast<unsigned long long>(Row.Serial.FP.VFGNodes),
                 static_cast<unsigned long long>(Row.Serial.FP.VFGEdges),
                 static_cast<unsigned long long>(Row.Serial.FP.Checks),
                 I + 1 != Rows.size() ? "," : "");
  }
  std::fprintf(F, "  ],\n");
  std::fprintf(F, "  \"summary\": {\"min_speedup\": %.4f, "
                  "\"geomean_speedup\": %.4f, "
                  "\"summary_geomean_speedup\": %.4f}\n}\n",
               MinSpeedup, Geomean, SummaryGeomean);
  std::fclose(F);
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
