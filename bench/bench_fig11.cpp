//===- bench/bench_fig11.cpp - Reproduces Figure 11 ------------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 11: the *static* numbers of shadow propagations
/// (reads from shadow state) and runtime checks inserted by each Usher
/// variant, normalized to MSan's full instrumentation (percent).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace usher;
using namespace usher::bench;

int main() {
  std::printf("Figure 11: static shadow propagations / checks, "
              "normalized to MSAN (%%), under O0+IM\n");
  std::printf("%-12s | %8s %11s %10s %9s | %8s %11s %10s %9s\n", "",
              "TL", "TL+AT", "OptI", "USHER", "TL", "TL+AT", "OptI",
              "USHER");
  std::printf("%-12s | %40s | %40s\n", "Benchmark", "#Propagations",
              "#Checks");

  double PropSums[4] = {0, 0, 0, 0};
  double CheckSums[4] = {0, 0, 0, 0};
  for (const auto &B : workload::spec2000Suite()) {
    RunResult Full = runBenchmark(B, transforms::OptPreset::O0IM,
                                  core::ToolVariant::MSanFull);
    const double FullProps =
        static_cast<double>(Full.Stats.StaticPropagations);
    const double FullChecks = static_cast<double>(Full.Stats.StaticChecks);

    double Props[4], Checks[4];
    const core::ToolVariant Variants[] = {
        core::ToolVariant::UsherTL, core::ToolVariant::UsherTLAT,
        core::ToolVariant::UsherOptI, core::ToolVariant::UsherFull};
    for (unsigned Idx = 0; Idx != 4; ++Idx) {
      RunResult R =
          runBenchmark(B, transforms::OptPreset::O0IM, Variants[Idx]);
      Props[Idx] =
          FullProps ? 100.0 * R.Stats.StaticPropagations / FullProps : 0;
      Checks[Idx] =
          FullChecks ? 100.0 * R.Stats.StaticChecks / FullChecks : 0;
      PropSums[Idx] += Props[Idx];
      CheckSums[Idx] += Checks[Idx];
    }
    std::printf("%-12s | %7.0f%% %10.0f%% %9.0f%% %8.0f%% | %7.0f%% "
                "%10.0f%% %9.0f%% %8.0f%%\n",
                B.Name.c_str(), Props[0], Props[1], Props[2], Props[3],
                Checks[0], Checks[1], Checks[2], Checks[3]);
  }

  const double N = workload::spec2000Suite().size();
  std::printf("%-12s | %7.0f%% %10.0f%% %9.0f%% %8.0f%% | %7.0f%% "
              "%10.0f%% %9.0f%% %8.0f%%\n",
              "average", PropSums[0] / N, PropSums[1] / N, PropSums[2] / N,
              PropSums[3] / N, CheckSums[0] / N, CheckSums[1] / N,
              CheckSums[2] / N, CheckSums[3] / N);
  std::printf("(paper averages: propagations 57/32/22/16, "
              "checks 72/44/44/23)\n");
  return 0;
}
