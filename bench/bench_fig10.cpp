//===- bench/bench_fig10.cpp - Reproduces Figure 10 ------------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 10: execution-time slowdowns (relative to native,
/// in percent) of MSan and the four Usher variants under O0+IM. Slowdown
/// is modeled from executed shadow work through the fixed cost model (see
/// runtime/CostModel.h); the paper's corresponding averages are printed
/// alongside for comparison.
///
/// Also asserts the one true positive: 197.parser's ppmatch bug must be
/// reported by every variant (Section 4.5).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace usher;
using namespace usher::bench;

int main() {
  std::printf("Figure 10: runtime slowdown vs native under O0+IM, in %%\n");
  std::printf("%-12s %9s %9s %11s %10s %9s\n", "Benchmark", "MSAN",
              "USHER-TL", "USHER-TL+AT", "USHER-OPTI", "USHER");

  double Sums[5] = {0, 0, 0, 0, 0};
  for (const auto &B : workload::spec2000Suite()) {
    std::printf("%-12s", B.Name.c_str());
    unsigned Idx = 0;
    for (core::ToolVariant V : AllVariants) {
      RunResult R = runBenchmark(B, transforms::OptPreset::O0IM, V);
      if (R.Report.ToolWarnings.size() != B.ExpectedBugSites) {
        std::fprintf(stderr,
                     "FATAL: %s under %s reported %zu bug sites, "
                     "expected %u\n",
                     B.Name.c_str(), core::toolVariantName(V),
                     R.Report.ToolWarnings.size(), B.ExpectedBugSites);
        return 1;
      }
      double Slowdown = R.Report.slowdownPercent();
      Sums[Idx++] += Slowdown;
      std::printf(" %8.0f%%", Slowdown);
    }
    std::printf("\n");
  }

  const double N = workload::spec2000Suite().size();
  std::printf("%-12s", "average");
  for (double Sum : Sums)
    std::printf(" %8.0f%%", Sum / N);
  std::printf("\n(paper averages: MSAN 302%%, USHER-TL 272%%, "
              "USHER-TL+AT 193%%, USHER-OPTI 181%%, USHER 123%%)\n");
  std::printf("\nAs in the paper, the single true positive (197.parser's "
              "ppmatch) was reported by every variant.\n");
  return 0;
}
