//===- bench/BenchUtil.h - Shared benchmark harness helpers -----*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure reproduction binaries: run one
/// benchmark under one tool variant and collect both static plan counts
/// and dynamic execution results.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_BENCH_BENCHUTIL_H
#define USHER_BENCH_BENCHUTIL_H

#include "core/PlanOpt.h"
#include "core/Usher.h"
#include "runtime/Interpreter.h"
#include "support/FaultInjection.h"
#include "support/RawStream.h"
#include "transforms/Transforms.h"
#include "workload/Spec2000.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace usher {
namespace bench {

/// Everything one (benchmark, preset, variant) run produces.
struct RunResult {
  core::UsherStatistics Stats;
  runtime::ExecutionReport Report;
};

/// Loads \p B, applies \p Preset, runs the \p Variant pipeline and
/// executes the instrumented program. Aborts loudly if the program result
/// or the expected bug count diverges (the harness must never report
/// numbers from a broken run).
///
/// Unless the caller configures its own budget or fault, every phase runs
/// under a generous per-program watchdog, so a pathological analysis
/// prints DEGRADED(<rung>) on stderr instead of hanging the whole table.
/// USHER_INJECT_FAULT (same grammar as usher-cli's --inject-fault=) is
/// honored, so the degraded path can be exercised from the shell.
inline RunResult runBenchmark(const workload::BenchmarkProgram &B,
                              transforms::OptPreset Preset,
                              core::ToolVariant Variant,
                              core::UsherOptions BaseOpts = {}) {
  auto M = workload::loadBenchmark(B);
  transforms::runPreset(*M, Preset);

  core::UsherOptions Opts = BaseOpts;
  Opts.Variant = Variant;
  if (!Opts.Fault)
    Opts.Fault = faultPlanFromEnv();
  if (!Opts.Limits.any() && !Opts.Fault) {
    Opts.Limits.PhaseDeadlineMs = 120'000;
    Opts.Limits.MaxStepsPerPhase = 1'000'000'000;
  }
  core::UsherResult R = core::runUsher(*M, Opts);
  if (R.Degradation.Degraded)
    std::fprintf(stderr, "DEGRADED(%s): %s under %s/%s: %s\n",
                 core::toolVariantName(R.Degradation.Rung), B.Name.c_str(),
                 transforms::optPresetName(Preset),
                 core::toolVariantName(Variant),
                 R.Degradation.summary().c_str());
  // The paper's O1/O2 pipelines re-optimize the *instrumented* code
  // (Section 4.6); model that by eliminating dead shadow computations.
  if (Preset != transforms::OptPreset::O0IM) {
    Budget PostOpt(Opts.Limits);
    PostOpt.beginPhase(BudgetPhase::OptI);
    core::optimizeShadowPlan(R.Plan, *M, &PostOpt);
    if (PostOpt.exhausted())
      std::fprintf(stderr,
                   "DEGRADED(%s): %s under %s/%s: shadow-plan cleanup hit "
                   "%s, kept partial result\n",
                   core::toolVariantName(R.Degradation.Rung), B.Name.c_str(),
                   transforms::optPresetName(Preset),
                   core::toolVariantName(Variant),
                   exhaustKindName(PostOpt.exhaustKind()));
  }

  runtime::Interpreter Interp(*M, &R.Plan);
  RunResult Out{std::move(R.Stats), Interp.run()};

  if (Out.Report.Reason != runtime::ExitReason::Finished) {
    std::fprintf(stderr, "FATAL: %s under %s/%s did not finish: %s\n",
                 B.Name.c_str(), transforms::optPresetName(Preset),
                 core::toolVariantName(Variant),
                 Out.Report.TrapMessage.c_str());
    std::abort();
  }
  // A program with a genuine undefined-value use has no single correct
  // result above O0: optimizations may legally change what the undefined
  // read observes (the paper's Section 4.6 caveat). Pin results otherwise.
  bool ResultIsPinned =
      B.ExpectedBugSites == 0 || Preset == transforms::OptPreset::O0IM;
  if (ResultIsPinned && Out.Report.MainResult != B.ExpectedResult) {
    std::fprintf(stderr,
                 "FATAL: %s under %s/%s computed %lld, expected %lld\n",
                 B.Name.c_str(), transforms::optPresetName(Preset),
                 core::toolVariantName(Variant),
                 static_cast<long long>(Out.Report.MainResult),
                 static_cast<long long>(B.ExpectedResult));
    std::abort();
  }
  return Out;
}

/// The five variants in the paper's presentation order.
inline const core::ToolVariant AllVariants[] = {
    core::ToolVariant::MSanFull, core::ToolVariant::UsherTL,
    core::ToolVariant::UsherTLAT, core::ToolVariant::UsherOptI,
    core::ToolVariant::UsherFull};

} // namespace bench
} // namespace usher

#endif // USHER_BENCH_BENCHUTIL_H
