//===- bench/bench_optlevels.cpp - Reproduces Section 4.6 ------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the Section 4.6 experiment: MSan vs full Usher under the
/// O0+IM, O1 and O2 pipelines. The paper's observation to reproduce:
/// higher optimization levels shrink both tools' slowdowns, and Usher's
/// *relative* reduction over MSan narrows versus O0+IM.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace usher;
using namespace usher::bench;

int main() {
  std::printf("Section 4.6: slowdown (%%) by optimization level\n");
  std::printf("%-12s | %8s %8s | %8s %8s | %8s %8s\n", "", "O0+IM", "",
              "O1", "", "O2", "");
  std::printf("%-12s | %8s %8s | %8s %8s | %8s %8s\n", "Benchmark", "MSAN",
              "USHER", "MSAN", "USHER", "MSAN", "USHER");

  const transforms::OptPreset Presets[] = {transforms::OptPreset::O0IM,
                                           transforms::OptPreset::O1,
                                           transforms::OptPreset::O2};
  double Sums[3][2] = {};
  for (const auto &B : workload::spec2000Suite()) {
    std::printf("%-12s |", B.Name.c_str());
    for (unsigned P = 0; P != 3; ++P) {
      double MSan =
          runBenchmark(B, Presets[P], core::ToolVariant::MSanFull)
              .Report.slowdownPercent();
      double Usher =
          runBenchmark(B, Presets[P], core::ToolVariant::UsherFull)
              .Report.slowdownPercent();
      Sums[P][0] += MSan;
      Sums[P][1] += Usher;
      std::printf(" %7.0f%% %7.0f%% %s", MSan, Usher, P == 2 ? "" : "|");
    }
    std::printf("\n");
  }

  const double N = workload::spec2000Suite().size();
  std::printf("%-12s |", "average");
  for (unsigned P = 0; P != 3; ++P)
    std::printf(" %7.0f%% %7.0f%% %s", Sums[P][0] / N, Sums[P][1] / N,
                P == 2 ? "" : "|");
  std::printf("\n(paper averages: O0+IM 302/123, O1 231/140, O2 212/132)\n");

  for (unsigned P = 0; P != 3; ++P) {
    double Reduction = 100.0 * (1.0 - (Sums[P][1] / Sums[P][0]));
    std::printf("overhead reduction at %s: %.1f%%%s\n",
                transforms::optPresetName(Presets[P]), Reduction,
                P == 0 ? " (paper: 59.3%)"
                       : (P == 1 ? " (paper: 39.4%)" : " (paper: 37.7%)"));
  }

  std::printf("\nNote: the paper's absolute narrowing at O1/O2 stems from "
              "re-optimizing C code that\ncarries heavy frontend "
              "redundancy; the hand-written TinyC benchmarks are already\n"
              "minimal, so the presets change little here (see "
              "EXPERIMENTS.md). What does\nreproduce is the invariance of "
              "detection and Usher's win at every level.\n");
  return 0;
}
