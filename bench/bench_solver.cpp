//===- bench/bench_solver.cpp - Constraint-solver micro-benchmark ----------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Times the three constraint engines — the naive Andersen reference, the
/// optimized Andersen solver (SCC collapsing + difference propagation),
/// and the near-linear unification solver — on copy-chain, copy-cycle,
/// fan-out and deref-storm/mesh stress workloads, and emits
/// machine-readable BENCH_solver.json. The timed quantity (solve_ms) is
/// the engine's own solve-phase clock from SolverStatistics: location
/// numbering and constraint building are engine-independent, and folding
/// them in would dilute exactly the difference the degradation ladder's
/// engine choice makes. Whole-construction wall time is recorded
/// alongside as total_ms. Each engine row also records its precision side
/// of the trade: average points-to set size, residual plan checks, and
/// the runtime warning count of a full pipeline built on that engine. See
/// EXPERIMENTS.md for the recipe and tools/check_bench_json.py for the
/// schema the smoke test validates.
///
/// Usage: bench_solver [--smoke] [--out=FILE]
///   --smoke     tiny workload sizes and a single timing iteration; used
///               by the bench-smoke ctest to keep the harness honest
///               without burning CI minutes.
///   --out=FILE  where to write the JSON (default: BENCH_solver.json).
///
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "analysis/PointerAnalysis.h"
#include "core/Usher.h"
#include "ir/IR.h"
#include "parser/Parser.h"
#include "runtime/Interpreter.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace usher;
using namespace usher::analysis;

namespace {

//===----------------------------------------------------------------------===//
// Workload generators
//===----------------------------------------------------------------------===//

/// Shared drip machinery. A "drip ladder" delivers one new points-to bit
/// per stage, strictly staged: cell_k stores a pointer to cell_{k+1}, and
/// q_{k+1} = *q_k only resolves after q_k's set materialized during the
/// fixpoint. Every q_k also copies into \p Sink, so the sink receives K
/// bits in K *separate* batches instead of one pre-merged set — exactly
/// the pattern where the full-set reference must re-propagate its whole
/// (growing) set downstream per batch while difference propagation moves
/// only the one new bit.
///
/// The ladder's first copy (q1 = c1) is appended by finishDrip() so it is
/// the LAST copy constraint: no bit starts moving before the entire
/// downstream graph is wired up.
void emitDripLadder(std::string &Src, unsigned K, const std::string &Sink) {
  // Constant assignments only declare the ladder variables (the parser
  // requires definition before use); they add no pointer constraints.
  for (unsigned I = 1; I <= K; ++I)
    Src += "  q" + std::to_string(I) + " = 0;\n";
  for (unsigned I = 1; I <= K; ++I)
    Src += "  c" + std::to_string(I) + " = alloc heap 1 uninit;\n";
  for (unsigned I = 1; I != K; ++I)
    Src += "  *c" + std::to_string(I) + " = c" + std::to_string(I + 1) +
           ";\n";
  for (unsigned I = 1; I != K; ++I)
    Src += "  q" + std::to_string(I + 1) + " = *q" + std::to_string(I) +
           ";\n";
  for (unsigned I = 1; I <= K; ++I)
    Src += "  " + Sink + " = q" + std::to_string(I) + ";\n";
}

/// Unrelated allocation sites that only widen the points-to universe: the
/// dense reference scans every word of it per union, the sparse engine
/// skips the zero words.
void emitPadding(std::string &Src, unsigned P) {
  for (unsigned I = 0; I != P; ++I)
    Src += "  pad = alloc heap 1 uninit;\n";
}

void finishDrip(std::string &Src) {
  Src += "  q1 = c1;\n  ret 0;\n}\n";
}

/// Drip-fed copy chain: K staged bits enter the head of a Length-node
/// copy chain one at a time; the reference engine re-walks the chain with
/// full-set unions per drip, the optimized engine with one-bit deltas.
std::string makeCopyChain(unsigned K, unsigned Length, unsigned Pad) {
  std::string Src = "func main() {\n  h0 = 0;\n";
  for (unsigned I = 1; I != Length; ++I)
    Src += "  h" + std::to_string(I) + " = h" + std::to_string(I - 1) +
           ";\n";
  emitDripLadder(Src, K, "h0");
  emitPadding(Src, Pad);
  finishDrip(Src);
  return Src;
}

/// Drip-fed copy cycle: the K staged bits enter a RingSize-node copy ring
/// (one SCC) with a Tail-node chain hanging off the entry. The reference
/// engine circulates every drip all the way around the ring; the
/// optimized engine detects the wasted lap-closing propagation, collapses
/// the ring to a single representative, and from then on each drip costs
/// one merge.
std::string makeCycleStress(unsigned K, unsigned RingSize, unsigned Tail,
                            unsigned Pad) {
  std::string Src = "func main() {\n  r0 = 0;\n";
  for (unsigned I = 1; I != RingSize; ++I)
    Src += "  r" + std::to_string(I) + " = r" + std::to_string(I - 1) +
           ";\n";
  Src += "  r0 = r" + std::to_string(RingSize - 1) + ";\n";
  Src += "  t0 = r0;\n";
  for (unsigned I = 1; I != Tail; ++I)
    Src += "  t" + std::to_string(I) + " = t" + std::to_string(I - 1) +
           ";\n";
  emitDripLadder(Src, K, "r0");
  emitPadding(Src, Pad);
  finishDrip(Src);
  return Src;
}

/// Deref storm: M pointees stored through one hub cell, N readers each
/// loading it back out. Every Andersen engine must materialize the full
/// M-bit set at each of the N readers — Θ(N·M) propagation work — while
/// the unification solver merges all M pointees into the hub's single
/// pointee cell and wires each reader to the class representative with
/// one copy edge, Θ(N+M). This is the workload class the unify rung's
/// >=3x speedup target is measured on.
std::string makeDerefStorm(unsigned Readers, unsigned Pointees,
                           unsigned Pad) {
  std::string Src = "func main() {\n  s = 0;\n";
  Src += "  h = alloc heap 1 uninit;\n";
  for (unsigned J = 0; J != Pointees; ++J)
    Src += "  o = alloc heap 1 uninit;\n  *h = o;\n";
  for (unsigned I = 0; I != Readers; ++I) {
    Src += "  p" + std::to_string(I) + " = *h;\n";
    Src += "  s = p" + std::to_string(I) + ";\n";
  }
  emitPadding(Src, Pad);
  Src += "  ret 0;\n}\n";
  return Src;
}

/// Deref mesh: \p Hubs independent deref storms (each with its own cell,
/// \p Pointees stores and \p Readers loads) whose readers all drain into
/// one shared sink. The Andersen engines pay Θ(Hubs·Readers·Pointees);
/// the unification solver pays Θ(Hubs·(Readers+Pointees)) and its
/// interned harvest shares one materialized vector per hub's readers.
std::string makeDerefMesh(unsigned Hubs, unsigned Readers, unsigned Pointees,
                          unsigned Pad) {
  std::string Src = "func main() {\n  s = 0;\n";
  for (unsigned H = 0; H != Hubs; ++H) {
    std::string Hub = "h" + std::to_string(H);
    Src += "  " + Hub + " = alloc heap 1 uninit;\n";
    for (unsigned J = 0; J != Pointees; ++J)
      Src += "  o" + std::to_string(H) + " = alloc heap 1 uninit;\n  *" +
             Hub + " = o" + std::to_string(H) + ";\n";
    for (unsigned I = 0; I != Readers; ++I) {
      std::string P = "p" + std::to_string(H) + "_" + std::to_string(I);
      Src += "  " + P + " = *" + Hub + ";\n";
      Src += "  s = " + P + ";\n";
    }
  }
  emitPadding(Src, Pad);
  Src += "  ret 0;\n}\n";
  return Src;
}

/// Deref chain: the storm stacked at depth. Level 0 is a hub holding
/// \p Pointees objects; each further level loads the previous hub's
/// contents and stores them into its own hub, and \p Readers load each
/// level back out. Models nested indirection (linked structures, handle
/// tables): the Andersen engines re-materialize the full \p Pointees-bit
/// set at every level and reader — Θ(Levels·Readers·Pointees) — while the
/// unification solver moves one class id per level and reader,
/// Θ(Levels·Readers + Pointees).
std::string makeDerefChain(unsigned Levels, unsigned Readers,
                           unsigned Pointees, unsigned Pad) {
  std::string Src = "func main() {\n  s = 0;\n";
  Src += "  h0 = alloc heap 1 uninit;\n";
  for (unsigned J = 0; J != Pointees; ++J)
    Src += "  o = alloc heap 1 uninit;\n  *h0 = o;\n";
  for (unsigned L = 1; L != Levels; ++L) {
    std::string Prev = "h" + std::to_string(L - 1);
    std::string Hub = "h" + std::to_string(L);
    Src += "  " + Hub + " = alloc heap 1 uninit;\n";
    Src += "  x" + std::to_string(L) + " = *" + Prev + ";\n";
    Src += "  *" + Hub + " = x" + std::to_string(L) + ";\n";
    for (unsigned I = 0; I != Readers; ++I) {
      std::string P =
          "q" + std::to_string(L) + "_" + std::to_string(I);
      Src += "  " + P + " = *" + Hub + ";\n";
      Src += "  s = " + P + ";\n";
    }
  }
  emitPadding(Src, Pad);
  Src += "  ret 0;\n}\n";
  return Src;
}

/// Drip-fed fan-out: each staged bit is broadcast from a hub to Fan
/// chains of Depth copies. Stresses the per-successor cost of a pop: the
/// reference pays a dense full-set union per (successor, drip), the
/// optimized engine a single-bit merge.
std::string makeWideFanout(unsigned K, unsigned Fan, unsigned Depth,
                           unsigned Pad) {
  std::string Src = "func main() {\n  hub = 0;\n";
  for (unsigned F = 0; F != Fan; ++F) {
    std::string Base = "f" + std::to_string(F) + "_";
    Src += "  " + Base + "0 = hub;\n";
    for (unsigned I = 1; I != Depth; ++I)
      Src += "  " + Base + std::to_string(I) + " = " + Base +
             std::to_string(I - 1) + ";\n";
  }
  emitDripLadder(Src, K, "hub");
  emitPadding(Src, Pad);
  finishDrip(Src);
  return Src;
}

//===----------------------------------------------------------------------===//
// Measurement
//===----------------------------------------------------------------------===//

struct EngineResult {
  double SolveMs = 0;
  /// Full PointerAnalysis construction wall time (numbering + constraint
  /// building + solve) for the same iteration solve_ms came from.
  double TotalMs = 0;
  SolverStatistics Stats;
  /// Average points-to set size over every top-level variable — the
  /// precision axis of the speed-vs-precision curve.
  double AvgPtsSize = 0;
  /// Residual checks in a full UsherFull plan built on this engine, and
  /// the tool warnings that plan reports at runtime. The check count
  /// shows what the engine's precision buys statically; the warning
  /// count must not depend on the engine (soundness).
  uint64_t PlanChecks = 0;
  uint64_t Warnings = 0;
};

/// Parses \p Src fresh per iteration (heap cloning may mutate the module)
/// and reports the best-of-\p Iters solve time plus the final counters.
EngineResult runEngine(const std::string &Src, SolverKind Kind,
                       unsigned Iters) {
  EngineResult R;
  R.SolveMs = 1e100;
  for (unsigned It = 0; It != Iters; ++It) {
    auto M = parser::parseModuleOrAbort(Src.c_str());
    CallGraph CG(*M);
    PtaOptions Opts;
    Opts.Solver = Kind;
    auto T0 = std::chrono::steady_clock::now();
    PointerAnalysis PA(*M, CG, Opts);
    auto T1 = std::chrono::steady_clock::now();
    double Ms = PA.solverStats().SolveMs;
    if (Ms < R.SolveMs) {
      R.SolveMs = Ms;
      R.TotalMs =
          std::chrono::duration<double, std::milli>(T1 - T0).count();
      R.Stats = PA.solverStats();
    }
    if (PA.exhausted()) {
      std::fprintf(stderr, "FATAL: solver exhausted with no budget armed\n");
      std::abort();
    }
    if (It == 0) {
      uint64_t Vars = 0, Bits = 0;
      for (const auto &Fn : M->functions())
        for (const auto &V : Fn->variables()) {
          ++Vars;
          Bits += PA.pointsTo(V.get()).size();
        }
      R.AvgPtsSize = Vars ? static_cast<double>(Bits) / Vars : 0;
    }
  }

  // Precision downstream: a full pipeline on this engine, executed once.
  auto M = parser::parseModuleOrAbort(Src.c_str());
  core::UsherOptions UOpts;
  UOpts.Pta.Solver = Kind;
  core::UsherResult UR = core::runUsher(*M, UOpts);
  R.PlanChecks = UR.Plan.countChecks();
  runtime::ExecutionReport Rep = runtime::Interpreter(*M, &UR.Plan).run();
  R.Warnings = Rep.ToolWarnings.size();
  return R;
}

struct BenchRow {
  std::string Name;
  unsigned Nodes = 0;
  uint64_t Constraints = 0;
  EngineResult Naive;
  EngineResult Optimized;
  EngineResult Unify;
  double speedup() const {
    return Optimized.SolveMs > 0 ? Naive.SolveMs / Optimized.SolveMs : 0;
  }
  /// The ladder step the unify rung buys: optimized Andersen vs unify.
  double unifySpeedup() const {
    return Unify.SolveMs > 0 ? Optimized.SolveMs / Unify.SolveMs : 0;
  }
};

BenchRow runWorkload(const std::string &Name, const std::string &Src,
                     unsigned Iters) {
  BenchRow Row;
  Row.Name = Name;
  {
    auto M = parser::parseModuleOrAbort(Src.c_str());
    CallGraph CG(*M);
    PointerAnalysis PA(*M, CG);
    Row.Nodes = PA.numNodes();
    Row.Constraints = PA.solverStats().NumConstraints;
  }
  Row.Naive = runEngine(Src, SolverKind::NaiveReference, Iters);
  Row.Optimized = runEngine(Src, SolverKind::Optimized, Iters);
  Row.Unify = runEngine(Src, SolverKind::Unify, Iters);
  return Row;
}

void emitEngine(std::FILE *F, const char *Key, const EngineResult &E) {
  std::fprintf(F,
               "      \"%s\": {\"solve_ms\": %.4f, \"total_ms\": %.4f, "
               "\"propagations\": %llu, "
               "\"pops\": %llu, \"skipped_merged_pops\": %llu, "
               "\"collapses\": %llu, \"collapsed_nodes\": %llu, "
               "\"unified_cells\": %llu, \"budget_steps\": %llu, "
               "\"avg_pts_size\": %.4f, \"plan_checks\": %llu, "
               "\"warnings\": %llu}",
               Key, E.SolveMs, E.TotalMs,
               static_cast<unsigned long long>(E.Stats.NumPropagations),
               static_cast<unsigned long long>(E.Stats.NumPops),
               static_cast<unsigned long long>(E.Stats.NumSkippedMergedPops),
               static_cast<unsigned long long>(E.Stats.NumCollapses),
               static_cast<unsigned long long>(E.Stats.NumCollapsedNodes),
               static_cast<unsigned long long>(E.Stats.NumUnifiedCells),
               static_cast<unsigned long long>(E.Stats.NumBudgetSteps),
               E.AvgPtsSize,
               static_cast<unsigned long long>(E.PlanChecks),
               static_cast<unsigned long long>(E.Warnings));
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  std::string OutPath = "BENCH_solver.json";
  for (int I = 1; I != argc; ++I) {
    if (std::strcmp(argv[I], "--smoke") == 0) {
      Smoke = true;
    } else if (std::strncmp(argv[I], "--out=", 6) == 0) {
      OutPath = argv[I] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=FILE]\n", argv[0]);
      return 2;
    }
  }

  const unsigned Iters = Smoke ? 1 : 3;
  struct Spec {
    std::string Name;
    std::string Src;
  };
  std::vector<Spec> Specs;
  if (Smoke) {
    Specs.push_back({"copy_chain", makeCopyChain(8, 48, 64)});
    Specs.push_back({"cycle_stress", makeCycleStress(8, 24, 24, 64)});
    Specs.push_back({"wide_fanout", makeWideFanout(8, 8, 6, 64)});
    Specs.push_back({"deref_storm", makeDerefStorm(24, 24, 64)});
    Specs.push_back({"deref_mesh", makeDerefMesh(4, 8, 8, 32)});
    Specs.push_back({"deref_chain", makeDerefChain(4, 4, 8, 32)});
  } else {
    Specs.push_back({"copy_chain", makeCopyChain(96, 1500, 6000)});
    Specs.push_back({"cycle_stress", makeCycleStress(96, 512, 512, 4000)});
    Specs.push_back({"wide_fanout", makeWideFanout(96, 64, 16, 4000)});
    Specs.push_back({"deref_storm", makeDerefStorm(2000, 2000, 2000)});
    Specs.push_back({"deref_mesh", makeDerefMesh(64, 256, 256, 2000)});
    Specs.push_back({"deref_chain", makeDerefChain(48, 32, 1200, 2000)});
  }

  std::printf("%-14s %8s %10s %11s %11s %11s %8s %8s %9s %9s\n", "workload",
              "nodes", "constrs", "naive_ms", "opt_ms", "unify_ms", "speedup",
              "uspeedup", "opt_pts", "unify_pts");
  std::vector<BenchRow> Rows;
  double MinSpeedup = 1e100, GeoAcc = 1.0;
  double MinUnify = 1e100, UnifyGeoAcc = 1.0;
  for (const Spec &S : Specs) {
    BenchRow Row = runWorkload(S.Name, S.Src, Iters);
    std::printf("%-14s %8u %10llu %11.3f %11.3f %11.3f %7.2fx %7.2fx "
                "%9.2f %9.2f\n",
                Row.Name.c_str(), Row.Nodes,
                static_cast<unsigned long long>(Row.Constraints),
                Row.Naive.SolveMs, Row.Optimized.SolveMs, Row.Unify.SolveMs,
                Row.speedup(), Row.unifySpeedup(), Row.Optimized.AvgPtsSize,
                Row.Unify.AvgPtsSize);
    if (Row.speedup() < MinSpeedup)
      MinSpeedup = Row.speedup();
    GeoAcc *= Row.speedup();
    if (Row.unifySpeedup() < MinUnify)
      MinUnify = Row.unifySpeedup();
    UnifyGeoAcc *= Row.unifySpeedup();
    Rows.push_back(std::move(Row));
  }
  double Geomean = Rows.empty() ? 0 : std::pow(GeoAcc, 1.0 / Rows.size());
  double UnifyGeomean =
      Rows.empty() ? 0 : std::pow(UnifyGeoAcc, 1.0 / Rows.size());
  std::printf("min speedup %.2fx, geomean %.2fx; unify-vs-andersen min "
              "%.2fx, geomean %.2fx%s\n",
              MinSpeedup, Geomean, MinUnify, UnifyGeomean,
              Smoke ? " (smoke sizes; not meaningful)" : "");

  std::FILE *F = std::fopen(OutPath.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(F, "{\n  \"schema\": \"usher-bench-solver-v1\",\n");
  std::fprintf(F, "  \"smoke\": %s,\n", Smoke ? "true" : "false");
  std::fprintf(F, "  \"iterations\": %u,\n", Iters);
  std::fprintf(F, "  \"workloads\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const BenchRow &Row = Rows[I];
    std::fprintf(F, "    {\n      \"name\": \"%s\",\n", Row.Name.c_str());
    std::fprintf(F, "      \"nodes\": %u,\n", Row.Nodes);
    std::fprintf(F, "      \"constraints\": %llu,\n",
                 static_cast<unsigned long long>(Row.Constraints));
    emitEngine(F, "naive", Row.Naive);
    std::fprintf(F, ",\n");
    emitEngine(F, "optimized", Row.Optimized);
    std::fprintf(F, ",\n");
    emitEngine(F, "unify", Row.Unify);
    std::fprintf(F, ",\n      \"speedup\": %.4f,\n", Row.speedup());
    std::fprintf(F, "      \"unify_speedup\": %.4f\n    }%s\n",
                 Row.unifySpeedup(), I + 1 != Rows.size() ? "," : "");
  }
  std::fprintf(F, "  ],\n");
  std::fprintf(F, "  \"summary\": {\"min_speedup\": %.4f, "
                  "\"geomean_speedup\": %.4f, "
                  "\"min_unify_speedup\": %.4f, "
                  "\"geomean_unify_speedup\": %.4f}\n}\n",
               MinSpeedup, Geomean, MinUnify, UnifyGeomean);
  std::fclose(F);
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
