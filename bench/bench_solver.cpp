//===- bench/bench_solver.cpp - Constraint-solver micro-benchmark ----------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Times the optimized Andersen solver (SCC collapsing + difference
/// propagation) against the retained naive reference on copy-chain and
/// copy-cycle stress workloads, and emits machine-readable
/// BENCH_solver.json. See EXPERIMENTS.md for the recipe and
/// tools/check_bench_json.py for the schema the smoke test validates.
///
/// Usage: bench_solver [--smoke] [--out=FILE]
///   --smoke     tiny workload sizes and a single timing iteration; used
///               by the bench-smoke ctest to keep the harness honest
///               without burning CI minutes.
///   --out=FILE  where to write the JSON (default: BENCH_solver.json).
///
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "analysis/PointerAnalysis.h"
#include "ir/IR.h"
#include "parser/Parser.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace usher;
using namespace usher::analysis;

namespace {

//===----------------------------------------------------------------------===//
// Workload generators
//===----------------------------------------------------------------------===//

/// Shared drip machinery. A "drip ladder" delivers one new points-to bit
/// per stage, strictly staged: cell_k stores a pointer to cell_{k+1}, and
/// q_{k+1} = *q_k only resolves after q_k's set materialized during the
/// fixpoint. Every q_k also copies into \p Sink, so the sink receives K
/// bits in K *separate* batches instead of one pre-merged set — exactly
/// the pattern where the full-set reference must re-propagate its whole
/// (growing) set downstream per batch while difference propagation moves
/// only the one new bit.
///
/// The ladder's first copy (q1 = c1) is appended by finishDrip() so it is
/// the LAST copy constraint: no bit starts moving before the entire
/// downstream graph is wired up.
void emitDripLadder(std::string &Src, unsigned K, const std::string &Sink) {
  // Constant assignments only declare the ladder variables (the parser
  // requires definition before use); they add no pointer constraints.
  for (unsigned I = 1; I <= K; ++I)
    Src += "  q" + std::to_string(I) + " = 0;\n";
  for (unsigned I = 1; I <= K; ++I)
    Src += "  c" + std::to_string(I) + " = alloc heap 1 uninit;\n";
  for (unsigned I = 1; I != K; ++I)
    Src += "  *c" + std::to_string(I) + " = c" + std::to_string(I + 1) +
           ";\n";
  for (unsigned I = 1; I != K; ++I)
    Src += "  q" + std::to_string(I + 1) + " = *q" + std::to_string(I) +
           ";\n";
  for (unsigned I = 1; I <= K; ++I)
    Src += "  " + Sink + " = q" + std::to_string(I) + ";\n";
}

/// Unrelated allocation sites that only widen the points-to universe: the
/// dense reference scans every word of it per union, the sparse engine
/// skips the zero words.
void emitPadding(std::string &Src, unsigned P) {
  for (unsigned I = 0; I != P; ++I)
    Src += "  pad = alloc heap 1 uninit;\n";
}

void finishDrip(std::string &Src) {
  Src += "  q1 = c1;\n  ret 0;\n}\n";
}

/// Drip-fed copy chain: K staged bits enter the head of a Length-node
/// copy chain one at a time; the reference engine re-walks the chain with
/// full-set unions per drip, the optimized engine with one-bit deltas.
std::string makeCopyChain(unsigned K, unsigned Length, unsigned Pad) {
  std::string Src = "func main() {\n  h0 = 0;\n";
  for (unsigned I = 1; I != Length; ++I)
    Src += "  h" + std::to_string(I) + " = h" + std::to_string(I - 1) +
           ";\n";
  emitDripLadder(Src, K, "h0");
  emitPadding(Src, Pad);
  finishDrip(Src);
  return Src;
}

/// Drip-fed copy cycle: the K staged bits enter a RingSize-node copy ring
/// (one SCC) with a Tail-node chain hanging off the entry. The reference
/// engine circulates every drip all the way around the ring; the
/// optimized engine detects the wasted lap-closing propagation, collapses
/// the ring to a single representative, and from then on each drip costs
/// one merge.
std::string makeCycleStress(unsigned K, unsigned RingSize, unsigned Tail,
                            unsigned Pad) {
  std::string Src = "func main() {\n  r0 = 0;\n";
  for (unsigned I = 1; I != RingSize; ++I)
    Src += "  r" + std::to_string(I) + " = r" + std::to_string(I - 1) +
           ";\n";
  Src += "  r0 = r" + std::to_string(RingSize - 1) + ";\n";
  Src += "  t0 = r0;\n";
  for (unsigned I = 1; I != Tail; ++I)
    Src += "  t" + std::to_string(I) + " = t" + std::to_string(I - 1) +
           ";\n";
  emitDripLadder(Src, K, "r0");
  emitPadding(Src, Pad);
  finishDrip(Src);
  return Src;
}

/// Drip-fed fan-out: each staged bit is broadcast from a hub to Fan
/// chains of Depth copies. Stresses the per-successor cost of a pop: the
/// reference pays a dense full-set union per (successor, drip), the
/// optimized engine a single-bit merge.
std::string makeWideFanout(unsigned K, unsigned Fan, unsigned Depth,
                           unsigned Pad) {
  std::string Src = "func main() {\n  hub = 0;\n";
  for (unsigned F = 0; F != Fan; ++F) {
    std::string Base = "f" + std::to_string(F) + "_";
    Src += "  " + Base + "0 = hub;\n";
    for (unsigned I = 1; I != Depth; ++I)
      Src += "  " + Base + std::to_string(I) + " = " + Base +
             std::to_string(I - 1) + ";\n";
  }
  emitDripLadder(Src, K, "hub");
  emitPadding(Src, Pad);
  finishDrip(Src);
  return Src;
}

//===----------------------------------------------------------------------===//
// Measurement
//===----------------------------------------------------------------------===//

struct EngineResult {
  double SolveMs = 0;
  SolverStatistics Stats;
};

/// Parses \p Src fresh per iteration (heap cloning may mutate the module)
/// and reports the best-of-\p Iters solve time plus the final counters.
EngineResult runEngine(const std::string &Src, SolverKind Kind,
                       unsigned Iters) {
  EngineResult R;
  R.SolveMs = 1e100;
  for (unsigned It = 0; It != Iters; ++It) {
    auto M = parser::parseModuleOrAbort(Src.c_str());
    CallGraph CG(*M);
    PtaOptions Opts;
    Opts.Solver = Kind;
    auto T0 = std::chrono::steady_clock::now();
    PointerAnalysis PA(*M, CG, Opts);
    auto T1 = std::chrono::steady_clock::now();
    double Ms = std::chrono::duration<double, std::milli>(T1 - T0).count();
    if (Ms < R.SolveMs) {
      R.SolveMs = Ms;
      R.Stats = PA.solverStats();
    }
    if (PA.exhausted()) {
      std::fprintf(stderr, "FATAL: solver exhausted with no budget armed\n");
      std::abort();
    }
  }
  return R;
}

struct BenchRow {
  std::string Name;
  unsigned Nodes = 0;
  uint64_t Constraints = 0;
  EngineResult Naive;
  EngineResult Optimized;
  double speedup() const {
    return Optimized.SolveMs > 0 ? Naive.SolveMs / Optimized.SolveMs : 0;
  }
};

BenchRow runWorkload(const std::string &Name, const std::string &Src,
                     unsigned Iters) {
  BenchRow Row;
  Row.Name = Name;
  {
    auto M = parser::parseModuleOrAbort(Src.c_str());
    CallGraph CG(*M);
    PointerAnalysis PA(*M, CG);
    Row.Nodes = PA.numNodes();
    Row.Constraints = PA.solverStats().NumConstraints;
  }
  Row.Naive = runEngine(Src, SolverKind::NaiveReference, Iters);
  Row.Optimized = runEngine(Src, SolverKind::Optimized, Iters);
  return Row;
}

void emitEngine(std::FILE *F, const char *Key, const EngineResult &E) {
  std::fprintf(F,
               "      \"%s\": {\"solve_ms\": %.4f, \"propagations\": %llu, "
               "\"pops\": %llu, \"skipped_merged_pops\": %llu, "
               "\"collapses\": %llu, \"collapsed_nodes\": %llu, "
               "\"budget_steps\": %llu}",
               Key, E.SolveMs,
               static_cast<unsigned long long>(E.Stats.NumPropagations),
               static_cast<unsigned long long>(E.Stats.NumPops),
               static_cast<unsigned long long>(E.Stats.NumSkippedMergedPops),
               static_cast<unsigned long long>(E.Stats.NumCollapses),
               static_cast<unsigned long long>(E.Stats.NumCollapsedNodes),
               static_cast<unsigned long long>(E.Stats.NumBudgetSteps));
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  std::string OutPath = "BENCH_solver.json";
  for (int I = 1; I != argc; ++I) {
    if (std::strcmp(argv[I], "--smoke") == 0) {
      Smoke = true;
    } else if (std::strncmp(argv[I], "--out=", 6) == 0) {
      OutPath = argv[I] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=FILE]\n", argv[0]);
      return 2;
    }
  }

  const unsigned Iters = Smoke ? 1 : 3;
  struct Spec {
    std::string Name;
    std::string Src;
  };
  std::vector<Spec> Specs;
  if (Smoke) {
    Specs.push_back({"copy_chain", makeCopyChain(8, 48, 64)});
    Specs.push_back({"cycle_stress", makeCycleStress(8, 24, 24, 64)});
    Specs.push_back({"wide_fanout", makeWideFanout(8, 8, 6, 64)});
  } else {
    Specs.push_back({"copy_chain", makeCopyChain(96, 1500, 6000)});
    Specs.push_back({"cycle_stress", makeCycleStress(96, 512, 512, 4000)});
    Specs.push_back({"wide_fanout", makeWideFanout(96, 64, 16, 4000)});
  }

  std::printf("%-14s %8s %10s %12s %12s %8s\n", "workload", "nodes",
              "constrs", "naive_ms", "opt_ms", "speedup");
  std::vector<BenchRow> Rows;
  double MinSpeedup = 1e100, GeoAcc = 1.0;
  for (const Spec &S : Specs) {
    BenchRow Row = runWorkload(S.Name, S.Src, Iters);
    std::printf("%-14s %8u %10llu %12.3f %12.3f %7.2fx\n", Row.Name.c_str(),
                Row.Nodes, static_cast<unsigned long long>(Row.Constraints),
                Row.Naive.SolveMs, Row.Optimized.SolveMs, Row.speedup());
    if (Row.speedup() < MinSpeedup)
      MinSpeedup = Row.speedup();
    GeoAcc *= Row.speedup();
    Rows.push_back(std::move(Row));
  }
  double Geomean = Rows.empty() ? 0 : std::pow(GeoAcc, 1.0 / Rows.size());
  std::printf("min speedup %.2fx, geomean %.2fx%s\n", MinSpeedup, Geomean,
              Smoke ? " (smoke sizes; not meaningful)" : "");

  std::FILE *F = std::fopen(OutPath.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(F, "{\n  \"schema\": \"usher-bench-solver-v1\",\n");
  std::fprintf(F, "  \"smoke\": %s,\n", Smoke ? "true" : "false");
  std::fprintf(F, "  \"iterations\": %u,\n", Iters);
  std::fprintf(F, "  \"workloads\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const BenchRow &Row = Rows[I];
    std::fprintf(F, "    {\n      \"name\": \"%s\",\n", Row.Name.c_str());
    std::fprintf(F, "      \"nodes\": %u,\n", Row.Nodes);
    std::fprintf(F, "      \"constraints\": %llu,\n",
                 static_cast<unsigned long long>(Row.Constraints));
    emitEngine(F, "naive", Row.Naive);
    std::fprintf(F, ",\n");
    emitEngine(F, "optimized", Row.Optimized);
    std::fprintf(F, ",\n      \"speedup\": %.4f\n    }%s\n", Row.speedup(),
                 I + 1 != Rows.size() ? "," : "");
  }
  std::fprintf(F, "  ],\n");
  std::fprintf(F, "  \"summary\": {\"min_speedup\": %.4f, "
                  "\"geomean_speedup\": %.4f}\n}\n",
               MinSpeedup, Geomean);
  std::fclose(F);
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
