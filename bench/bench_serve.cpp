//===- bench/bench_serve.cpp - Analysis service throughput/latency ---------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the analysis service end to end: a real Daemon on an AF_UNIX
/// socket (hosted in-process on its own thread), driven by the blocking
/// ServeClient exactly as usher-serve --client would. Two legs over the
/// SPEC-like suite programs:
///
///   cold — every request is the first sight of its program (the
///          snapshot directory starts empty per round), so each reply
///          pays a full pipeline run plus the wire round trip.
///   warm — the identical request stream replayed against the now-seeded
///          store, so each reply is assembled from validated snapshots.
///
/// Every warm payload is byte-compared against its cold counterpart; any
/// mismatch aborts the harness (warm_identical would be false), because
/// a speedup bought with a different answer is a bug, not a result.
/// Emits BENCH_serve.json (schema usher-serve-v1, kind "bench",
/// validated by tools/check_serve_json.py).
///
/// Usage: bench_serve [--smoke] [--out=FILE]
///   --smoke     first three suite programs, one round; used by the
///               bench-smoke ctest.
///   --out=FILE  where to write the JSON (default: BENCH_serve.json).
///
//===----------------------------------------------------------------------===//

#include "ir/IR.h"
#include "serve/Client.h"
#include "serve/Daemon.h"
#include "support/RawStream.h"
#include "workload/Spec2000.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace usher;
using namespace usher::serve;

namespace {

double percentile(std::vector<double> Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  std::sort(Sorted.begin(), Sorted.end());
  const size_t Idx = static_cast<size_t>(P * (Sorted.size() - 1) + 0.5);
  return Sorted[std::min(Idx, Sorted.size() - 1)];
}

struct LegResult {
  double RequestsPerSec = 0.0;
  double P50Ms = 0.0;
  double P99Ms = 0.0;
  std::vector<std::string> Payloads;
};

/// Issues one analyze request per source through \p Client, timing each
/// call; \p Rounds repeats the stream to accumulate a latency sample.
LegResult runLeg(ServeClient &Client, const std::vector<std::string> &Sources,
                 unsigned Rounds) {
  LegResult R;
  std::vector<double> LatMs;
  const auto T0 = std::chrono::steady_clock::now();
  for (unsigned Round = 0; Round != Rounds; ++Round) {
    for (size_t I = 0; I != Sources.size(); ++I) {
      Request Rq;
      Rq.Kind = Op::Analyze;
      Rq.Id = Round * Sources.size() + I + 1;
      Rq.Source = Sources[I];
      const auto C0 = std::chrono::steady_clock::now();
      CallResult CR = Client.call(Rq);
      const auto C1 = std::chrono::steady_clock::now();
      if (CR.Outcome != CallOutcome::Ok ||
          CR.Rp.Status != ReplyStatus::Ok) {
        std::fprintf(stderr, "bench_serve: request %llu failed: %s\n",
                     static_cast<unsigned long long>(Rq.Id),
                     CR.Error.empty() ? replyStatusName(CR.Rp.Status)
                                      : CR.Error.c_str());
        std::exit(1);
      }
      LatMs.push_back(
          std::chrono::duration<double, std::milli>(C1 - C0).count());
      if (Round == 0)
        R.Payloads.push_back(std::move(CR.Rp.Payload));
    }
  }
  const double TotalSec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  R.RequestsPerSec = TotalSec > 0 ? LatMs.size() / TotalSec : 0.0;
  R.P50Ms = percentile(LatMs, 0.50);
  R.P99Ms = percentile(LatMs, 0.99);
  return R;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  std::string OutPath = "BENCH_serve.json";
  for (int I = 1; I != argc; ++I) {
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;
    else if (std::strncmp(argv[I], "--out=", 6) == 0)
      OutPath = argv[I] + 6;
    else {
      std::fprintf(stderr, "usage: bench_serve [--smoke] [--out=FILE]\n");
      return 2;
    }
  }

  // Program stream: the canonical suite, printed to source text once.
  std::vector<std::string> Sources;
  for (const workload::BenchmarkProgram &B : workload::spec2000Suite()) {
    auto M = workload::loadBenchmark(B);
    std::string Text;
    raw_string_ostream OS(Text);
    M->print(OS);
    Sources.push_back(std::move(Text));
    if (Smoke && Sources.size() == 3)
      break;
  }
  const unsigned Rounds = Smoke ? 1 : 5;

  const auto Base = std::filesystem::temp_directory_path() /
                    ("usher-bench-serve-" + std::to_string(::getpid()));
  std::filesystem::remove_all(Base);
  std::filesystem::create_directories(Base / "snap");

  DaemonOptions DO;
  DO.SocketPath = (Base / "bench.sock").string();
  DO.SnapshotDir = (Base / "snap").string();
  DO.Workers = 2;
  Daemon D(DO);
  if (!D.listen()) {
    std::fprintf(stderr, "bench_serve: cannot listen on %s\n",
                 DO.SocketPath.c_str());
    return 1;
  }
  std::thread Loop([&D] { D.run(); });

  ClientOptions CO;
  CO.SocketPath = DO.SocketPath;
  ServeClient Client(CO);

  // Cold leg: requests_per_sec over Rounds passes of the stream, where
  // only the first pass is truly cold; latencies beyond pass one are
  // warm, so the cold percentiles are taken from pass one alone. Keep it
  // honest by timing the cold pass separately.
  LegResult Cold = runLeg(Client, Sources, 1);
  LegResult Warm = runLeg(Client, Sources, Rounds);

  bool WarmIdentical = Cold.Payloads == Warm.Payloads;
  D.requestStop();
  Loop.join();
  std::filesystem::remove_all(Base);

  if (!WarmIdentical) {
    std::fprintf(stderr,
                 "bench_serve: warm payloads differ from cold — refusing "
                 "to report a speedup bought with a different answer\n");
    return 1;
  }

  FILE *Out = std::fopen(OutPath.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "bench_serve: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  raw_fd_ostream OS(Out);
  OS << "{\n";
  OS << "  \"schema\": \"usher-serve-v1\",\n";
  OS << "  \"kind\": \"bench\",\n";
  OS << "  \"smoke\": " << (Smoke ? "true" : "false") << ",\n";
  OS << "  \"requests\": " << (Sources.size() * (Rounds + 1)) << ",\n";
  OS.printf("  \"cold\": {\"requests_per_sec\": %.2f, \"p50_ms\": %.4f, "
            "\"p99_ms\": %.4f},\n",
            Cold.RequestsPerSec, Cold.P50Ms, Cold.P99Ms);
  OS.printf("  \"warm\": {\"requests_per_sec\": %.2f, \"p50_ms\": %.4f, "
            "\"p99_ms\": %.4f},\n",
            Warm.RequestsPerSec, Warm.P50Ms, Warm.P99Ms);
  OS << "  \"warm_identical\": true\n";
  OS << "}\n";
  OS.flush();
  std::fclose(Out);

  std::printf("bench_serve: cold %.1f req/s (p50 %.3f ms, p99 %.3f ms), "
              "warm %.1f req/s (p50 %.3f ms, p99 %.3f ms) -> %s\n",
              Cold.RequestsPerSec, Cold.P50Ms, Cold.P99Ms,
              Warm.RequestsPerSec, Warm.P50Ms, Warm.P99Ms, OutPath.c_str());
  return 0;
}
