//===- bench/bench_table1.cpp - Reproduces Table 1 -------------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 1: benchmark statistics under O0+IM. Columns follow
/// the paper: program size, analysis time/memory, variable populations,
/// %F uninitialized allocations, S semi-strong cuts per non-array heap
/// site, %SU/%WU store updates, VFG size, %B nodes reaching a needed
/// check, and the Opt I / Opt II work counts.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace usher;
using namespace usher::bench;

int main() {
  std::printf("Table 1: benchmark statistics under O0+IM "
              "(paper: Section 4.4)\n");
  std::printf("%-12s %6s %7s %8s %6s %6s %6s %6s %5s %5s %5s %5s %7s %5s "
              "%6s %6s\n",
              "Benchmark", "Insts", "Time_ms", "Edges", "VarTL", "Stack",
              "Heap", "Glob", "%F", "S", "%SU", "%WU", "VFG", "%B",
              "OptI_S", "OptII_R");

  double SumPctB = 0, SumPctF = 0, SumPctSU = 0, SumS = 0;
  for (const auto &B : workload::spec2000Suite()) {
    // Full Usher so the Opt I / Opt II columns are populated.
    RunResult R = runBenchmark(B, transforms::OptPreset::O0IM,
                               core::ToolVariant::UsherFull);
    const core::UsherStatistics &S = R.Stats;
    std::printf("%-12s %6llu %7.2f %8llu %6llu %6llu %6llu %6llu %5.0f "
                "%5.1f %5.0f %5.0f %7llu %5.0f %6llu %7llu\n",
                B.Name.c_str(),
                static_cast<unsigned long long>(S.NumInstructions),
                S.AnalysisSeconds * 1000.0,
                static_cast<unsigned long long>(S.NumVFGEdges),
                static_cast<unsigned long long>(S.NumTopLevelVars),
                static_cast<unsigned long long>(S.NumStackObjects),
                static_cast<unsigned long long>(S.NumHeapObjects),
                static_cast<unsigned long long>(S.NumGlobalObjects),
                S.PercentUninitObjects, S.SemiStrongCutsPerHeapSite,
                S.PercentStrongStores, S.PercentWeakStores,
                static_cast<unsigned long long>(S.NumVFGNodes),
                S.PercentReachingCheck,
                static_cast<unsigned long long>(S.NumSimplifiedMFCs),
                static_cast<unsigned long long>(S.NumRedirectedNodes));
    SumPctB += S.PercentReachingCheck;
    SumPctF += S.PercentUninitObjects;
    SumPctSU += S.PercentStrongStores;
    SumS += S.SemiStrongCutsPerHeapSite;
  }
  const double N = workload::spec2000Suite().size();
  std::printf("\naverages: %%F=%.0f (paper: 34), S=%.1f (paper: 3.2), "
              "%%SU=%.0f (paper: 36), %%B=%.0f (paper: 38)\n",
              SumPctF / N, SumS / N, SumPctSU / N, SumPctB / N);
  return 0;
}
