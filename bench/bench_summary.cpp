//===- bench/bench_summary.cpp - Summary-cache warm-edit speedup ----------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Times the summary engine's definedness resolution cold (empty
/// content-hash cache, every per-function summary computed) against warm
/// (cache primed by the cold run, then one instruction-count-preserving
/// single-function edit), over synthetic call-graph shapes where the
/// function count — and therefore the reusable fraction — is the knob.
/// Emits machine-readable BENCH_summary.json (schema
/// usher-bench-summary-v1, validated by tools/check_bench_json.py).
///
/// The edit swaps the operand order of one addition in the *first*
/// function of the module. That keeps the instruction count (call sites
/// are absolute instruction ids, so an id-shifting edit would honestly
/// dirty every shifted segment — see DESIGN.md) and keeps the edited
/// function's summary *value*, so a correct cache recomputes exactly one
/// summary and revalidates the rest. The harness asserts those counts and
/// cross-checks every bottom set against an uncached engine run and the
/// global fixpoint: a speedup bought with a different answer is a bug.
///
/// The timer wraps only the engine's run() — the phases upstream of it
/// (pointer analysis, SSA, VFG construction) are identical in both
/// configurations and would only dilute the measured ratio.
///
/// Usage: bench_summary [--smoke] [--out=FILE]
///   --smoke     small function counts, single timing iteration; used by
///               the bench-smoke ctest.
///   --out=FILE  where to write the JSON (default: BENCH_summary.json).
///
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "analysis/ModRef.h"
#include "analysis/PointerAnalysis.h"
#include "analysis/SummaryEngine.h"
#include "core/Definedness.h"
#include "parser/Parser.h"
#include "ssa/MemorySSA.h"
#include "vfg/VFG.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace usher;

namespace {

/// Call-graph shapes. Every generated function body has the same
/// instruction count, so the count-preserving edit below never shifts an
/// instruction id.
enum class Shape { Chain, Diamond, Recursive, Wide };

/// Renders one arithmetic-and-calls module of \p NumFns functions plus
/// main. \p SwapFirst applies the benchmark's edit: f0's first addition
/// becomes b + a instead of a + b.
std::string generateProgram(Shape S, unsigned NumFns, bool SwapFirst) {
  std::string Src;
  // Bodies are deliberately long and branchy relative to each function's
  // two-formal interface: computing a summary (and propagating realized
  // facts through it) walks every phi in the body, while revalidating a
  // cached record only deserializes interface-sized bytes. Every third
  // diamond assigns its target on one arm only, so genuine maybe-
  // undefined facts flow through the whole module and the concrete
  // expansion phase has real work to memoize.
  const unsigned BodyLen = 36;
  auto Body = [&](const std::string &Seed) {
    Src += "  t0 = " + Seed + ";\n";
    for (unsigned J = 1; J != BodyLen; ++J) {
      std::string T = "t" + std::to_string(J);
      std::string P = "t" + std::to_string(J - 1);
      std::string LA = "A" + std::to_string(J);
      std::string LB = "B" + std::to_string(J);
      if (J % 3 == 0) {
        Src += "  if " + P + " goto " + LB + ";\n";
        Src += "  " + T + " = " + P + " + a;\n";
        Src += LB + ":\n";
      } else {
        Src += "  if " + P + " goto " + LA + ";\n";
        Src += "  " + T + " = " + P + " + a;\n";
        Src += "  goto " + LB + ";\n";
        Src += LA + ":\n  " + T + " = " + P + " + b;\n";
        Src += LB + ":\n";
      }
    }
    Src += "  ret t" + std::to_string(BodyLen - 1) + ";\n}\n";
  };
  for (unsigned I = 0; I != NumFns; ++I) {
    std::string N = "f" + std::to_string(I);
    Src += "func " + N + "(a, b) {\n";
    if (I == 0 || S == Shape::Wide) {
      // Leaf: pure arithmetic. The edit target is always f0.
      Body(I == 0 && SwapFirst ? "b + a" : "a + b");
      continue;
    }
    std::string Prev = "f" + std::to_string(I - 1);
    switch (S) {
    case Shape::Chain:
      Src += "  c = " + Prev + "(a, b);\n";
      Body("c + b");
      break;
    case Shape::Diamond: {
      std::string Prev2 = "f" + std::to_string(I >= 2 ? I - 2 : 0);
      Src += "  c = " + Prev + "(a, b);\n";
      Src += "  d = " + Prev2 + "(b, a);\n";
      Body("c + d");
      break;
    }
    case Shape::Recursive:
      Src += "  c = " + Prev + "(a, b);\n";
      if (I % 4 == 0)
        Src += "  s = " + N + "(b, c);\n";
      else
        Src += "  s = " + Prev + "(b, c);\n";
      Body("c + s");
      break;
    case Shape::Wide:
      break; // Handled above.
    }
  }
  Src += "func main() {\n  x = 1;\n  y = 2;\n";
  if (S == Shape::Wide) {
    // Four distinct call sites per leaf: each one realizes another calling
    // context the cold run must propagate through the body, while the warm
    // run replays the memoized union.
    for (unsigned I = 0; I != NumFns; ++I)
      for (unsigned Site = 0; Site != 4; ++Site)
        Src += "  r" + std::to_string(I) + "_" + std::to_string(Site) +
               " = f" + std::to_string(I) +
               (Site % 2 ? "(y, x);\n" : "(x, y);\n");
    Src += "  ret r0_0;\n}\n";
  } else {
    Src += "  r = f" + std::to_string(NumFns - 1) + "(x, y);\n";
    Src += "  ret r;\n}\n";
  }
  return Src;
}

/// The analysis phases upstream of the definedness resolution, built
/// exactly as core::runUsher builds them. Owned together because the VFG
/// borrows from every earlier stage.
struct Pipeline {
  std::unique_ptr<ir::Module> M;
  std::unique_ptr<analysis::CallGraph> CG;
  std::unique_ptr<analysis::PointerAnalysis> PA;
  std::unique_ptr<analysis::ModRefAnalysis> MR;
  std::unique_ptr<ssa::MemorySSA> SSA;
  std::unique_ptr<vfg::VFG> G;
};

Pipeline buildPipeline(const std::string &Source) {
  Pipeline P;
  P.M = parser::parseModuleOrAbort(Source);
  P.CG = std::make_unique<analysis::CallGraph>(*P.M);
  P.PA = std::make_unique<analysis::PointerAnalysis>(*P.M, *P.CG,
                                                     analysis::PtaOptions());
  P.MR = std::make_unique<analysis::ModRefAnalysis>(*P.M, *P.CG, *P.PA);
  P.SSA = std::make_unique<ssa::MemorySSA>(*P.M, *P.PA, *P.MR, nullptr);
  P.G = std::make_unique<vfg::VFG>(
      vfg::VFGBuilder(*P.M, *P.SSA, *P.PA, *P.CG).build());
  return P;
}

std::string bottomString(const vfg::VFG &G, const BitSet &Bottom) {
  std::string S;
  for (uint32_t N = 0; N != G.numNodes(); ++N)
    if (Bottom.test(N))
      S += std::to_string(N) + " ";
  return S;
}

struct EngineRun {
  double Ms = 0;
  std::string Bottom;
  analysis::SummaryEngineStats Stats;
};

/// One timed SummaryEngine resolution over \p P.
EngineRun runEngine(const Pipeline &P, analysis::SummaryCache *Cache) {
  EngineRun R;
  analysis::SummaryEngine SE(*P.G, analysis::SummaryEngineOptions(), nullptr,
                             Cache);
  auto T0 = std::chrono::steady_clock::now();
  analysis::SummaryRunResult RR = SE.run();
  auto T1 = std::chrono::steady_clock::now();
  R.Ms = std::chrono::duration<double, std::milli>(T1 - T0).count();
  if (!RR.Bottom) {
    std::fprintf(stderr, "FATAL: summary engine delegated on a benchmark "
                         "workload\n");
    std::abort();
  }
  R.Bottom = bottomString(*P.G, *RR.Bottom);
  R.Stats = SE.stats();
  return R;
}

struct BenchRow {
  std::string Name;
  unsigned Functions = 0;
  double ColdMs = 1e100;
  double WarmMs = 1e100;
  uint64_t SummariesTotal = 0;
  uint64_t WarmRecomputed = 0;
  uint64_t WarmReused = 0;
  uint64_t PrunedTransfers = 0;
  uint64_t MergedContexts = 0;
  uint64_t PrunedCalleeEntries = 0;
  double speedup() const { return WarmMs > 0 ? ColdMs / WarmMs : 0; }
  double hitRate() const {
    uint64_t Total = WarmRecomputed + WarmReused;
    return Total ? static_cast<double>(WarmReused) / Total : 0;
  }
};

BenchRow runWorkload(const char *Name, Shape S, unsigned NumFns,
                     unsigned Iters) {
  BenchRow Row;
  Row.Name = Name;
  Row.Functions = NumFns + 1; // + main
  const std::string Base = generateProgram(S, NumFns, false);
  const std::string Edited = generateProgram(S, NumFns, true);

  // Reference answers once, outside any timing loop: the global fixpoint
  // on the base program and an uncached engine on the edited one.
  {
    Pipeline P = buildPipeline(Base);
    core::Definedness Global(*P.G, core::DefinednessOptions());
    std::string GlobalBottom;
    for (uint32_t N = 0; N != P.G->numNodes(); ++N)
      if (Global.mayBeUndefined(N))
        GlobalBottom += std::to_string(N) + " ";
    if (runEngine(P, nullptr).Bottom != GlobalBottom) {
      std::fprintf(stderr, "FATAL: %s: summary engine diverged from the "
                           "global fixpoint\n",
                   Name);
      std::abort();
    }
  }
  const std::string FreshEditedBottom =
      runEngine(buildPipeline(Edited), nullptr).Bottom;

  for (unsigned It = 0; It != Iters; ++It) {
    // A fresh cache per iteration: the warm configuration must always
    // measure the first re-analysis after the edit, not a second hit on
    // an already-updated cache.
    analysis::SummaryCache Cache;
    Pipeline ColdP = buildPipeline(Base);
    EngineRun Cold = runEngine(ColdP, &Cache);
    Pipeline WarmP = buildPipeline(Edited);
    EngineRun Warm = runEngine(WarmP, &Cache);

    if (Warm.Bottom != FreshEditedBottom) {
      std::fprintf(stderr, "FATAL: %s: warm result diverged from an "
                           "uncached run on the edited program\n",
                   Name);
      std::abort();
    }
    if (Cold.Stats.SummariesReused != 0 ||
        Warm.Stats.SummariesComputed != 1) {
      std::fprintf(stderr,
                   "FATAL: %s: invalidation not exact (cold reused %llu, "
                   "warm recomputed %llu of %llu)\n",
                   Name,
                   static_cast<unsigned long long>(Cold.Stats.SummariesReused),
                   static_cast<unsigned long long>(
                       Warm.Stats.SummariesComputed),
                   static_cast<unsigned long long>(
                       Cold.Stats.SummariesComputed));
      std::abort();
    }
    Row.SummariesTotal = Cold.Stats.SummariesComputed;
    Row.WarmRecomputed = Warm.Stats.SummariesComputed;
    Row.WarmReused = Warm.Stats.SummariesReused;
    Row.PrunedTransfers = Cold.Stats.PrunedTransfers;
    Row.MergedContexts = Cold.Stats.MergedContexts;
    Row.PrunedCalleeEntries = Cold.Stats.PrunedCalleeEntries;
    if (Cold.Ms < Row.ColdMs)
      Row.ColdMs = Cold.Ms;
    if (Warm.Ms < Row.WarmMs)
      Row.WarmMs = Warm.Ms;
  }
  return Row;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  std::string OutPath = "BENCH_summary.json";
  for (int I = 1; I != argc; ++I) {
    if (std::strcmp(argv[I], "--smoke") == 0) {
      Smoke = true;
    } else if (std::strncmp(argv[I], "--out=", 6) == 0) {
      OutPath = argv[I] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=FILE]\n", argv[0]);
      return 2;
    }
  }
  const unsigned Iters = Smoke ? 1 : 5;
  const unsigned Scale = Smoke ? 1 : 8;

  struct Workload {
    const char *Name;
    Shape S;
    unsigned NumFns;
  };
  const Workload Workloads[] = {
      {"chain", Shape::Chain, 8 * Scale},
      {"diamond", Shape::Diamond, 8 * Scale},
      {"recursive", Shape::Recursive, 8 * Scale},
      {"wide", Shape::Wide, 16 * Scale},
  };

  std::printf("%-12s %5s %10s %10s %8s %8s %8s\n", "workload", "fns",
              "cold_ms", "warm_ms", "speedup", "reused", "pruned");
  std::vector<BenchRow> Rows;
  double MinSpeedup = 1e100, GeoAcc = 1.0;
  uint64_t TotalPruned = 0;
  for (const Workload &W : Workloads) {
    BenchRow Row = runWorkload(W.Name, W.S, W.NumFns, Iters);
    uint64_t Pruned =
        Row.PrunedTransfers + Row.MergedContexts + Row.PrunedCalleeEntries;
    std::printf("%-12s %5u %10.3f %10.3f %7.2fx %5llu/%-2llu %8llu\n",
                Row.Name.c_str(), Row.Functions, Row.ColdMs, Row.WarmMs,
                Row.speedup(),
                static_cast<unsigned long long>(Row.WarmReused),
                static_cast<unsigned long long>(Row.SummariesTotal),
                static_cast<unsigned long long>(Pruned));
    if (Row.speedup() < MinSpeedup)
      MinSpeedup = Row.speedup();
    GeoAcc *= Row.speedup();
    TotalPruned += Pruned;
    Rows.push_back(std::move(Row));
  }
  double Geomean =
      Rows.empty() ? 0 : std::pow(GeoAcc, 1.0 / static_cast<double>(Rows.size()));
  std::printf("min speedup %.2fx, geomean %.2fx%s\n", MinSpeedup, Geomean,
              Smoke ? " (smoke sizes; not meaningful)" : "");
  if (TotalPruned == 0) {
    std::fprintf(stderr, "FATAL: no workload exercised redundant-summary "
                         "elimination\n");
    return 1;
  }

  std::FILE *F = std::fopen(OutPath.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(F, "{\n  \"schema\": \"usher-bench-summary-v1\",\n");
  std::fprintf(F, "  \"smoke\": %s,\n", Smoke ? "true" : "false");
  std::fprintf(F, "  \"iterations\": %u,\n", Iters);
  std::fprintf(F, "  \"workloads\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const BenchRow &R = Rows[I];
    std::fprintf(
        F,
        "    {\"name\": \"%s\", \"functions\": %u, \"cold_ms\": %.4f, "
        "\"warm_ms\": %.4f, \"speedup\": %.4f, \"summaries_total\": %llu, "
        "\"warm_recomputed\": %llu, \"warm_reused\": %llu, "
        "\"cache_hit_rate\": %.4f, \"pruned_transfers\": %llu, "
        "\"merged_contexts\": %llu, \"pruned_callee_entries\": %llu}%s\n",
        R.Name.c_str(), R.Functions, R.ColdMs, R.WarmMs, R.speedup(),
        static_cast<unsigned long long>(R.SummariesTotal),
        static_cast<unsigned long long>(R.WarmRecomputed),
        static_cast<unsigned long long>(R.WarmReused), R.hitRate(),
        static_cast<unsigned long long>(R.PrunedTransfers),
        static_cast<unsigned long long>(R.MergedContexts),
        static_cast<unsigned long long>(R.PrunedCalleeEntries),
        I + 1 != Rows.size() ? "," : "");
  }
  std::fprintf(F, "  ],\n");
  std::fprintf(F,
               "  \"summary\": {\"min_speedup\": %.4f, "
               "\"geomean_speedup\": %.4f, \"total_pruned\": %llu}\n}\n",
               MinSpeedup, Geomean,
               static_cast<unsigned long long>(TotalPruned));
  std::fclose(F);
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
