//===- tools/usher-serve.cpp - Analysis service daemon + client ------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fault-isolated analysis service. Daemon mode serves analyze /
/// diagnose / status / ping / shutdown requests over a unix socket;
/// client mode issues one request and prints the reply (honoring the
/// daemon's overload protocol with backoff-and-retry).
///
///   usher-serve --socket=/tmp/u.sock --snapshot-dir=/tmp/snap
///   usher-serve --client --socket=/tmp/u.sock --op=analyze prog.tc
///   usher-serve --client --socket=/tmp/u.sock --op=status
///   usher-serve --list-fault-sites
///
/// Daemon exit codes: 0 clean shutdown (SIGINT/SIGTERM or a shutdown
/// request, after in-flight work is flushed), 2 usage error, 1 socket /
/// event-loop failure.
///
/// Client exit codes: 0 reply received with status OK or DEGRADED,
/// 2 usage/input error, 3 reply received with status ERROR, 4 the daemon
/// shed the request on every retry, 5 transport failure (cannot connect,
/// connection dropped mid-reply, malformed reply, receive timeout).
///
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Daemon.h"
#include "support/FaultInjection.h"
#include "support/RawStream.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include <sys/stat.h>

using namespace usher;
using namespace usher::serve;

namespace {

constexpr int ExitOk = 0;
constexpr int ExitFailure = 1;      // Daemon could not start or crashed.
constexpr int ExitUsage = 2;        // Bad flags or unreadable input.
constexpr int ExitErrorReply = 3;   // Client: daemon answered ERROR.
constexpr int ExitShed = 4;         // Client: shed on every attempt.
constexpr int ExitTransport = 5;    // Client: transport-level failure.

struct ServeOptions {
  bool Client = false;
  bool ListFaultSites = false;
  std::string SocketPath;
  std::string SnapshotDir;
  uint64_t Workers = 2;
  uint64_t QueueLimit = 8;
  uint64_t RetryAfterMs = 50;
  core::EngineKind Engine = core::EngineKind::Global;
  // Client-side.
  std::string OpName = "ping";
  std::string InputPath;
  uint64_t DeadlineMs = 0;
  uint64_t BudgetSteps = 0;
  std::string FaultSpec;
  uint64_t Id = 1;
  uint64_t MaxRetries = 6;
  uint64_t TimeoutMs = 0;
  bool QueryGiven = false;
  uint64_t QuerySrc = 0;
  uint64_t QuerySink = 0;
  /// --client-list= selection for analyze requests; forwarded verbatim on
  /// the wire (the daemon parses and validates the names).
  std::string Clients;
};

int usage(const char *Argv0) {
  errs() << "usage: " << Argv0
         << " --socket=<path> [--snapshot-dir=<dir>] [--workers=<N>]\n"
            "         [--queue-limit=<N>] [--retry-after-ms=<N>]\n"
            "         [--engine=global|summary]\n"
            "       " << Argv0
         << " --client --socket=<path> --op=<op> [<program.tc>]\n"
            "         [--deadline-ms=<N>] [--budget-steps=<N>]\n"
            "         [--inject-fault=<phase>@<step>[:once|:<n>]] [--id=<N>]\n"
            "         [--max-retries=<N>] [--timeout-ms=<N>]\n"
            "         [--query=<srcId>,<sinkId>]\n"
            "         [--client-list=<c>[,<c>...]]\n"
            "       " << Argv0 << " --list-fault-sites\n"
            "\n"
            "ops: analyze diagnose status ping shutdown query (analyze,\n"
            "diagnose and query read TinyC source from <program.tc>;\n"
            "query also needs --query=<srcId>,<sinkId> and answers the\n"
            "single VFG reachability question demand-driven, without a\n"
            "whole-program analysis)\n"
            "\n"
            "--client-list=uuv,addrleak,bounds asks analyze to plan the\n"
            "named sanitizer clients over one shared VFG (default: uuv)\n"
            "\n"
            "--engine=summary keys per-function summaries by content hash\n"
            "and persists them in the snapshot store, so an edited module\n"
            "re-analyzes only the dirty functions plus the callers their\n"
            "summary-value deltas escape into\n"
            "\n"
            "daemon exit codes: 0 clean shutdown, 1 socket/loop failure,\n"
            "2 usage error\n"
            "client exit codes: 0 OK or DEGRADED reply, 2 usage/input\n"
            "error, 3 ERROR reply, 4 shed on every retry, 5 transport\n"
            "failure\n";
  return ExitUsage;
}

bool parseUInt(std::string_view Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  Out = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    Out = Out * 10 + static_cast<uint64_t>(C - '0');
  }
  return true;
}

bool parseArgs(int Argc, char **Argv, ServeOptions &Opts) {
  for (int I = 1; I != Argc; ++I) {
    std::string_view Arg = Argv[I];
    if (Arg == "--client")
      Opts.Client = true;
    else if (Arg == "--list-fault-sites")
      Opts.ListFaultSites = true;
    else if (Arg.rfind("--socket=", 0) == 0)
      Opts.SocketPath = std::string(Arg.substr(9));
    else if (Arg.rfind("--snapshot-dir=", 0) == 0)
      Opts.SnapshotDir = std::string(Arg.substr(15));
    else if (Arg.rfind("--workers=", 0) == 0) {
      if (!parseUInt(Arg.substr(10), Opts.Workers) || Opts.Workers == 0 ||
          Opts.Workers > 64)
        return false;
    } else if (Arg.rfind("--queue-limit=", 0) == 0) {
      if (!parseUInt(Arg.substr(14), Opts.QueueLimit))
        return false;
    } else if (Arg.rfind("--retry-after-ms=", 0) == 0) {
      if (!parseUInt(Arg.substr(17), Opts.RetryAfterMs))
        return false;
    } else if (Arg.rfind("--engine=", 0) == 0) {
      std::string_view E = Arg.substr(9);
      if (E == "global")
        Opts.Engine = core::EngineKind::Global;
      else if (E == "summary")
        Opts.Engine = core::EngineKind::Summary;
      else
        return false;
    } else if (Arg.rfind("--op=", 0) == 0) {
      Opts.OpName = std::string(Arg.substr(5));
    } else if (Arg.rfind("--deadline-ms=", 0) == 0) {
      if (!parseUInt(Arg.substr(14), Opts.DeadlineMs))
        return false;
    } else if (Arg.rfind("--budget-steps=", 0) == 0) {
      if (!parseUInt(Arg.substr(15), Opts.BudgetSteps))
        return false;
    } else if (Arg.rfind("--inject-fault=", 0) == 0) {
      Opts.FaultSpec = std::string(Arg.substr(15));
    } else if (Arg.rfind("--query=", 0) == 0) {
      std::string_view Pair = Arg.substr(8);
      size_t Comma = Pair.find(',');
      if (Comma == std::string_view::npos ||
          !parseUInt(Pair.substr(0, Comma), Opts.QuerySrc) ||
          !parseUInt(Pair.substr(Comma + 1), Opts.QuerySink) ||
          Opts.QuerySrc > 0xffffffffull || Opts.QuerySink > 0xffffffffull)
        return false;
      Opts.QueryGiven = true;
    } else if (Arg.rfind("--client-list=", 0) == 0) {
      Opts.Clients = std::string(Arg.substr(14));
      if (Opts.Clients.empty())
        return false;
    } else if (Arg.rfind("--id=", 0) == 0) {
      if (!parseUInt(Arg.substr(5), Opts.Id))
        return false;
    } else if (Arg.rfind("--max-retries=", 0) == 0) {
      if (!parseUInt(Arg.substr(14), Opts.MaxRetries))
        return false;
    } else if (Arg.rfind("--timeout-ms=", 0) == 0) {
      if (!parseUInt(Arg.substr(13), Opts.TimeoutMs))
        return false;
    } else if (!Arg.empty() && Arg[0] != '-' && Opts.InputPath.empty()) {
      Opts.InputPath = Arg;
    } else {
      return false;
    }
  }
  return true;
}

std::string readFile(const std::string &Path, bool &Ok) {
  std::FILE *FP = std::fopen(Path.c_str(), "rb");
  if (!FP) {
    Ok = false;
    return {};
  }
  std::string Contents;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), FP)) > 0)
    Contents.append(Buf, N);
  std::fclose(FP);
  Ok = true;
  return Contents;
}

Daemon *ActiveDaemon = nullptr;

void onSignal(int) {
  // Async-signal-safe: requestStop only writes one byte to a pipe. The
  // event loop finishes in-flight work, flushes replies, and exits 0.
  if (ActiveDaemon)
    ActiveDaemon->requestStop();
}

int runDaemon(const ServeOptions &Opts) {
  if (!Opts.SnapshotDir.empty())
    ::mkdir(Opts.SnapshotDir.c_str(), 0755); // Best effort; may exist.

  DaemonOptions DO;
  DO.SocketPath = Opts.SocketPath;
  DO.SnapshotDir = Opts.SnapshotDir;
  DO.Workers = static_cast<unsigned>(Opts.Workers);
  DO.QueueLimit = Opts.QueueLimit;
  DO.RetryAfterMs = static_cast<uint32_t>(Opts.RetryAfterMs);
  DO.Engine = Opts.Engine;

  Daemon D(DO);
  if (!D.listen())
    return ExitFailure;

  ActiveDaemon = &D;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  outs() << "usher-serve: listening on " << Opts.SocketPath << "\n";
  outs().flush();
  int RC = D.run();
  ActiveDaemon = nullptr;
  return RC == 0 ? ExitOk : ExitFailure;
}

int runClient(const ServeOptions &Opts) {
  Request Rq;
  if (!parseOpName(Opts.OpName, Rq.Kind)) {
    errs() << "error: unknown op '" << Opts.OpName << "'\n";
    return ExitUsage;
  }
  Rq.Id = Opts.Id;
  Rq.DeadlineMs = static_cast<uint32_t>(Opts.DeadlineMs);
  Rq.BudgetSteps = Opts.BudgetSteps;
  Rq.FaultSpec = Opts.FaultSpec;
  if (Rq.Kind == Op::Analyze || Rq.Kind == Op::Diagnose ||
      Rq.Kind == Op::Query) {
    if (Opts.InputPath.empty()) {
      errs() << "error: --op=" << Opts.OpName << " needs a <program.tc>\n";
      return ExitUsage;
    }
    bool Ok = false;
    Rq.Source = readFile(Opts.InputPath, Ok);
    if (!Ok) {
      errs() << Opts.InputPath << ": error: cannot open file\n";
      return ExitUsage;
    }
  }
  if (Rq.Kind == Op::Query) {
    if (!Opts.QueryGiven) {
      errs() << "error: --op=query needs --query=<srcId>,<sinkId>\n";
      return ExitUsage;
    }
    Rq.QuerySrc = static_cast<uint32_t>(Opts.QuerySrc);
    Rq.QuerySink = static_cast<uint32_t>(Opts.QuerySink);
  }
  if (!Opts.Clients.empty()) {
    if (Rq.Kind != Op::Analyze) {
      errs() << "error: --client-list= only applies to --op=analyze\n";
      return ExitUsage;
    }
    Rq.Clients = Opts.Clients;
  }

  ClientOptions CO;
  CO.SocketPath = Opts.SocketPath;
  CO.MaxRetries = static_cast<unsigned>(Opts.MaxRetries);
  CO.ReceiveTimeoutMs = static_cast<uint32_t>(Opts.TimeoutMs);
  ServeClient C(CO);
  CallResult Res = C.call(Rq);

  switch (Res.Outcome) {
  case CallOutcome::Ok:
    break;
  case CallOutcome::ShedExhausted:
    errs() << "usher-serve: shed after " << Res.Attempts << " attempts ("
           << Res.BackoffWaitedMs << " ms backed off)\n";
    return ExitShed;
  case CallOutcome::ConnectError:
  case CallOutcome::ProtocolError:
  case CallOutcome::Dropped:
  case CallOutcome::Timeout:
    errs() << "usher-serve: " << callOutcomeName(Res.Outcome) << ": "
           << Res.Error << "\n";
    return ExitTransport;
  }

  raw_ostream &OS = outs();
  OS << replyStatusName(Res.Rp.Status) << " id=" << Res.Rp.Id;
  if (!Res.Rp.Rung.empty())
    OS << " rung=" << Res.Rp.Rung;
  if (Res.Attempts > 1)
    OS << " attempts=" << Res.Attempts;
  OS << "\n" << Res.Rp.Payload;
  OS.flush();
  return Res.Rp.Status == ReplyStatus::Error ? ExitErrorReply : ExitOk;
}

} // namespace

int main(int Argc, char **Argv) {
  ServeOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return usage(Argv[0]);

  if (Opts.ListFaultSites) {
    for (const std::string &Name : allFaultSiteNames())
      outs() << Name << "\n";
    return ExitOk;
  }
  if (Opts.SocketPath.empty())
    return usage(Argv[0]);

  // The I/O fault plane is armed from the environment so test campaigns
  // can inject snapshot/socket/parse failures into an otherwise stock
  // daemon invocation.
  if (std::optional<IoFaultSpec> Spec = ioFaultSpecFromEnv())
    armIoFault(*Spec);

  return Opts.Client ? runClient(Opts) : runDaemon(Opts);
}
