#!/usr/bin/env python3
"""Graceful-interrupt driver for usher-cli and usher-fuzz.

Both CLIs install SIGINT/SIGTERM handlers that raise a cooperative stop
flag: the interpreter (usher-cli) and the campaign loop (usher-fuzz)
poll it, flush whatever partial report they have, and exit with the
distinct code 5. This driver sends the signal mid-run and checks the
contract end to end.

Usage:
  check_interrupt.py --cli CLI_BIN
      Start usher-cli on a generated infinite-loop program, SIGINT it
      mid-execution, and require exit code 5 plus an "interrupted after
      N steps" line in the flushed report.

  check_interrupt.py --fuzz FUZZ_BIN
      Start a usher-fuzz campaign far too long to finish, SIGINT it, and
      require exit code 5, a flushed JSON report with "interrupted":
      true, fewer completed runs than requested, and the usual
      usher-fuzz-v1 internal consistency (valid + invalid == runs).

Prints "check_interrupt: OK" on success; the ctest entries key off it.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

# Runs forever (TinyC has no timers): the only ways out are the step
# budget (200M steps, several seconds) or the interrupt being tested.
LOOP_PROGRAM = """\
func main() {
  i = 0;
loop:
  i = i + 1;
  goto loop;
}
"""


def fail(msg):
    print(f"check_interrupt: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def interrupt_after(cmd, delay):
    """Run cmd, SIGINT it after `delay` seconds, return (code, out, err)."""
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)
    time.sleep(delay)
    proc.send_signal(signal.SIGINT)
    try:
        out, err = proc.communicate(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail(f"{cmd[0]} did not exit within 30s of SIGINT")
    return proc.returncode, out, err


def run_cli(cli_bin):
    with tempfile.TemporaryDirectory() as tmp:
        prog = os.path.join(tmp, "loop.tc")
        with open(prog, "w") as f:
            f.write(LOOP_PROGRAM)
        code, out, err = interrupt_after([cli_bin, prog], 0.3)
        if code != 5:
            fail(f"usher-cli exited {code}, expected 5\n"
                 f"stdout: {out!r}\nstderr: {err!r}")
        if "interrupted after" not in out + err:
            fail(f"no flushed interrupt report\n"
                 f"stdout: {out!r}\nstderr: {err!r}")
    print("check_interrupt: OK (cli: exit 5, partial report flushed)")


def run_fuzz(fuzz_bin):
    with tempfile.TemporaryDirectory() as tmp:
        out_json = os.path.join(tmp, "fuzz.json")
        requested = 1000000
        code, out, err = interrupt_after(
            [fuzz_bin, "--seed=1", f"--runs={requested}",
             f"--json={out_json}"], 0.5)
        if code != 5:
            fail(f"usher-fuzz exited {code}, expected 5\n"
                 f"stdout: {out!r}\nstderr: {err!r}")
        try:
            with open(out_json) as f:
                report = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(f"interrupted campaign did not flush valid JSON: {e}")
        if report.get("interrupted") is not True:
            fail(f"flushed report not marked interrupted: "
                 f"{report.get('interrupted')!r}")
        runs = report.get("runs")
        if not isinstance(runs, int) or not 0 <= runs < requested:
            fail(f"completed runs {runs!r} not in [0, {requested})")
        if report.get("valid", -1) + report.get("invalid", -1) != runs:
            fail("partial report inconsistent: valid + invalid != runs")
    print(f"check_interrupt: OK (fuzz: exit 5, {runs} completed runs "
          f"flushed)")


def main(argv):
    if len(argv) == 3 and argv[1] == "--cli":
        run_cli(argv[2])
    elif len(argv) == 3 and argv[1] == "--fuzz":
        run_fuzz(argv[2])
    else:
        print(__doc__, file=sys.stderr)
        sys.exit(2)


if __name__ == "__main__":
    main(sys.argv)
