#!/usr/bin/env python3
"""Schema validator for the benchmark harness JSON reports.

Dispatches on the report's "schema" tag:
  usher-bench-solver-v1    bench_solver's BENCH_solver.json
  usher-bench-parallel-v1  bench_parallel's BENCH_parallel.json
  usher-bench-summary-v1   bench_summary's BENCH_summary.json
  usher-bench-scale-v1     bench_scale's BENCH_scale.json

Usage:
  check_bench_json.py FILE.json              validate an existing report
  check_bench_json.py --run-smoke BENCH_BIN  run `BENCH_BIN --smoke` into a
                                             temp file, then validate it

The bench-smoke ctests use --run-smoke so the benchmark harnesses and
their machine-readable output stay covered without burning tier-1 time on
the full workload sizes. Speedup thresholds are deliberately NOT enforced
(tiny smoke sizes measure nothing, and bench_parallel's ratio depends on
the host's core count); the summary must merely be well-formed —
EXPERIMENTS.md records and interprets the measured numbers.
"""

import json
import subprocess
import sys
import tempfile
import os

ENGINE_FIELDS = [
    "solve_ms",
    "total_ms",
    "propagations",
    "pops",
    "skipped_merged_pops",
    "collapses",
    "collapsed_nodes",
    "unified_cells",
    "budget_steps",
    "avg_pts_size",
    "plan_checks",
    "warnings",
]


def fail(msg):
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_engine(workload, key):
    engine = workload.get(key)
    if not isinstance(engine, dict):
        fail(f"workload {workload.get('name')!r}: missing engine block {key!r}")
    for field in ENGINE_FIELDS:
        value = engine.get(field)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            fail(
                f"workload {workload.get('name')!r} engine {key!r}: "
                f"field {field!r} missing or non-numeric: {value!r}"
            )
        if value < 0:
            fail(
                f"workload {workload.get('name')!r} engine {key!r}: "
                f"field {field!r} negative: {value!r}"
            )
    # The solve phase is a sub-interval of the whole construction.
    if engine["solve_ms"] > engine["total_ms"] + 1e-6:
        fail(
            f"workload {workload.get('name')!r} engine {key!r}: solve_ms "
            "exceeds total_ms"
        )
    # The worklist accounting invariant only constrains the Andersen
    # engines; the unification solver's pops are class-representative
    # merges with their own charging discipline.
    if key != "unify" and engine["pops"] > (
        engine["budget_steps"] + engine["skipped_merged_pops"]
    ):
        fail(
            f"workload {workload.get('name')!r} engine {key!r}: pops exceed "
            "charged steps plus uncharged merged-pop skips"
        )
    if key != "unify" and engine["unified_cells"] != 0:
        fail(
            f"workload {workload.get('name')!r} engine {key!r}: Andersen "
            "engine reports unified cells"
        )
    return engine


def check_summary(report):
    summary = report.get("summary")
    if not isinstance(summary, dict):
        fail("missing 'summary'")
    for field in ("min_speedup", "geomean_speedup"):
        value = summary.get(field)
        if not isinstance(value, (int, float)) or value <= 0:
            fail(f"summary: bad {field!r}: {value!r}")
    if summary["min_speedup"] > summary["geomean_speedup"] + 1e-9:
        fail("summary: min_speedup exceeds geomean_speedup")


def check_common_header(report):
    if not isinstance(report.get("smoke"), bool):
        fail("missing boolean 'smoke' flag")
    if not isinstance(report.get("iterations"), int) or report["iterations"] < 1:
        fail("missing positive integer 'iterations'")


def check_solver_report(report, path):
    check_common_header(report)
    workloads = report.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        fail("'workloads' missing or empty")
    names = set()
    for workload in workloads:
        name = workload.get("name")
        if not isinstance(name, str) or not name:
            fail("workload with missing name")
        if name in names:
            fail(f"duplicate workload name {name!r}")
        names.add(name)
        for field in ("nodes", "constraints"):
            if not isinstance(workload.get(field), int) or workload[field] <= 0:
                fail(f"workload {name!r}: bad {field!r}: {workload.get(field)!r}")
        naive = check_engine(workload, "naive")
        optimized = check_engine(workload, "optimized")
        unify = check_engine(workload, "unify")
        for field in ("speedup", "unify_speedup"):
            value = workload.get(field)
            if not isinstance(value, (int, float)) or value <= 0:
                fail(f"workload {name!r}: bad {field!r}: {value!r}")
        # Both Andersen engines solve the identical constraint system;
        # collapsing only ever reduces worklist traffic.
        if optimized["pops"] > 4 * naive["pops"] + 16:
            fail(
                f"workload {name!r}: optimized pop count wildly exceeds the "
                "reference's — difference propagation is not working"
            )
        # Unification may only lose precision, never gain it, and the
        # warnings the pipeline reports at runtime are ground truth — the
        # engine must not change them.
        if unify["avg_pts_size"] + 1e-9 < optimized["avg_pts_size"]:
            fail(
                f"workload {name!r}: unify points-to sets are smaller than "
                "Andersen's — the over-approximation is broken"
            )
        if unify["plan_checks"] < optimized["plan_checks"]:
            fail(
                f"workload {name!r}: unify plan has fewer checks than "
                "Andersen's — unsound check elision"
            )
        if unify["warnings"] != optimized["warnings"]:
            fail(
                f"workload {name!r}: runtime warning count depends on the "
                "constraint engine"
            )

    check_summary(report)
    for field in ("min_unify_speedup", "geomean_unify_speedup"):
        value = report["summary"].get(field)
        if not isinstance(value, (int, float)) or value <= 0:
            fail(f"summary: bad {field!r}: {value!r}")
    if (
        report["summary"]["min_unify_speedup"]
        > report["summary"]["geomean_unify_speedup"] + 1e-9
    ):
        fail("summary: min_unify_speedup exceeds geomean_unify_speedup")
    print(f"check_bench_json: OK: {path} ({len(workloads)} workloads)")


def check_parallel_report(report, path):
    check_common_header(report)
    for field in ("jobs", "hardware_concurrency", "cores_available"):
        if not isinstance(report.get(field), int) or report[field] < 1:
            fail(f"missing positive integer {field!r}")
    if report["jobs"] < 2:
        fail("parallel configuration must use at least 2 workers")

    benchmarks = report.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        fail("'benchmarks' missing or empty")
    if not report["smoke"] and len(benchmarks) != 15:
        fail(f"full run must cover the 15-program suite, got {len(benchmarks)}")
    names = set()
    for bench in benchmarks:
        name = bench.get("name")
        if not isinstance(name, str) or not name:
            fail("benchmark with missing name")
        if name in names:
            fail(f"duplicate benchmark name {name!r}")
        names.add(name)
        timing_fields = (
            "serial_ms",
            "parallel_ms",
            "speedup",
            "summary_serial_ms",
            "summary_parallel_ms",
            "summary_speedup",
        )
        for field in timing_fields:
            value = bench.get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                fail(f"benchmark {name!r}: bad {field!r}: {value!r}")
            if value <= 0:
                fail(f"benchmark {name!r}: non-positive {field!r}: {value!r}")
        for field in ("vfg_nodes", "vfg_edges", "checks"):
            value = bench.get(field)
            if not isinstance(value, int) or value < 0:
                fail(f"benchmark {name!r}: bad {field!r}: {value!r}")
        # Loose tolerance: both timings and the speedup are independently
        # rounded to 4 decimals, which compounds for sub-millisecond runs.
        for num, den, ratio_field in (
            ("serial_ms", "parallel_ms", "speedup"),
            ("summary_serial_ms", "summary_parallel_ms", "summary_speedup"),
        ):
            ratio = bench[num] / bench[den]
            if abs(ratio - bench[ratio_field]) > max(0.01, 0.01 * ratio):
                fail(
                    f"benchmark {name!r}: {ratio_field} inconsistent "
                    "with timings"
                )

    check_summary(report)
    sg = report["summary"].get("summary_geomean_speedup")
    if not isinstance(sg, (int, float)) or sg <= 0:
        fail(f"summary: bad 'summary_geomean_speedup': {sg!r}")
    print(f"check_bench_json: OK: {path} ({len(benchmarks)} benchmarks)")


def check_summary_report(report, path):
    check_common_header(report)
    workloads = report.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        fail("'workloads' missing or empty")
    names = set()
    total_pruned = 0
    for workload in workloads:
        name = workload.get("name")
        if not isinstance(name, str) or not name:
            fail("workload with missing name")
        if name in names:
            fail(f"duplicate workload name {name!r}")
        names.add(name)
        for field in ("cold_ms", "warm_ms", "speedup"):
            value = workload.get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                fail(f"workload {name!r}: bad {field!r}: {value!r}")
            if value <= 0:
                fail(f"workload {name!r}: non-positive {field!r}: {value!r}")
        counters = (
            "functions",
            "summaries_total",
            "warm_recomputed",
            "warm_reused",
            "pruned_transfers",
            "merged_contexts",
            "pruned_callee_entries",
        )
        for field in counters:
            value = workload.get(field)
            if not isinstance(value, int) or value < 0:
                fail(f"workload {name!r}: bad {field!r}: {value!r}")
        # The warm run's accounting must close: every summary is either
        # reused or recomputed, and an edit that invalidates nothing (or
        # everything) means the content-hash invalidation is broken.
        total = workload["summaries_total"]
        if workload["warm_recomputed"] + workload["warm_reused"] != total:
            fail(f"workload {name!r}: warm recomputed+reused != total")
        if not 0 < workload["warm_recomputed"] < total:
            fail(
                f"workload {name!r}: single-function edit recomputed "
                f"{workload['warm_recomputed']} of {total} summaries"
            )
        hit_rate = workload.get("cache_hit_rate")
        if not isinstance(hit_rate, (int, float)) or not 0 <= hit_rate <= 1:
            fail(f"workload {name!r}: bad cache_hit_rate: {hit_rate!r}")
        if abs(hit_rate - workload["warm_reused"] / total) > 0.001:
            fail(f"workload {name!r}: cache_hit_rate inconsistent with counts")
        ratio = workload["cold_ms"] / workload["warm_ms"]
        if abs(ratio - workload["speedup"]) > max(0.01, 0.01 * ratio):
            fail(f"workload {name!r}: speedup inconsistent with timings")
        total_pruned += (
            workload["pruned_transfers"]
            + workload["merged_contexts"]
            + workload["pruned_callee_entries"]
        )

    check_summary(report)
    summary = report["summary"]
    if summary.get("total_pruned") != total_pruned:
        fail(f"summary: total_pruned disagrees with per-workload counters")
    if total_pruned == 0:
        fail("no workload exercised redundant-summary elimination")
    print(f"check_bench_json: OK: {path} ({len(workloads)} workloads)")


SCALE_CONFIGS = [
    "andersen-global",
    "andersen-global-j2",
    "unify-global",
    "andersen-summary",
]

SCALE_PHASES = [
    "pointer_analysis_ms",
    "memory_ssa_ms",
    "vfg_ms",
    "definedness_ms",
    "opt2_ms",
]


def check_scale_report(report, path):
    check_common_header(report)
    hw = report.get("hardware_concurrency")
    if not isinstance(hw, int) or hw < 1:
        fail(f"missing positive integer 'hardware_concurrency': {hw!r}")

    sizes = report.get("sizes")
    if not isinstance(sizes, list) or not sizes:
        fail("'sizes' missing or empty")
    if not report["smoke"] and len(sizes) < 4:
        fail(f"full run must cover at least 4 sizes, got {len(sizes)}")

    prev_nodes = -1
    prev_instrs = -1
    for size in sizes:
        name = size.get("name")
        if not isinstance(name, str) or not name:
            fail("size with missing name")
        for field in ("target_nodes", "functions", "instructions"):
            value = size.get(field)
            if not isinstance(value, int) or value <= 0:
                fail(f"size {name!r}: bad {field!r}: {value!r}")
        # The answer cross-checks are enforced by the harness (it aborts
        # on any mismatch); the report must still attest that they ran.
        for field in ("fingerprints_equal", "warnings_equal_all_configs"):
            if size.get(field) is not True:
                fail(f"size {name!r}: {field!r} is not true")

        configs = size.get("configs")
        if not isinstance(configs, list):
            fail(f"size {name!r}: missing 'configs'")
        if [c.get("name") for c in configs] != SCALE_CONFIGS:
            fail(
                f"size {name!r}: configs must be exactly {SCALE_CONFIGS}, "
                f"got {[c.get('name') for c in configs]}"
            )
        by_name = {c["name"]: c for c in configs}
        for config in configs:
            cname = f"{name}/{config['name']}"
            for field in ("parse_ms", "mem2reg_ms", "analyze_ms"):
                value = config.get(field)
                if not isinstance(value, (int, float)) or value <= 0:
                    fail(f"{cname}: non-positive {field!r}: {value!r}")
            rss = config.get("peak_rss_bytes")
            if not isinstance(rss, int) or rss <= 0:
                fail(f"{cname}: bad 'peak_rss_bytes': {rss!r}")
            phases = config.get("phases")
            if not isinstance(phases, dict):
                fail(f"{cname}: missing 'phases'")
            for field in SCALE_PHASES:
                value = phases.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    fail(f"{cname}: bad phase {field!r}: {value!r}")
            # The recorded phases partition the analyze interval (up to
            # rounding and the driver's own bookkeeping between phases).
            if sum(phases.values()) > config["analyze_ms"] * 1.10 + 1.0:
                fail(f"{cname}: phase times exceed analyze_ms")
            for field in ("vfg_nodes", "vfg_edges", "checks", "shadow_ops"):
                value = config.get(field)
                if not isinstance(value, int) or value < 0:
                    fail(f"{cname}: bad {field!r}: {value!r}")
            ws = config.get("warning_sites")
            if not isinstance(ws, int) or ws < 0:
                fail(f"{cname}: bad 'warning_sites': {ws!r}")

        ref = by_name["andersen-global"]
        # Exact-equivalence configurations must report the identical
        # analysis; the unify rung may only over-approximate.
        for other in ("andersen-global-j2", "andersen-summary"):
            for field in ("vfg_nodes", "vfg_edges", "checks", "shadow_ops",
                          "warning_sites"):
                if by_name[other][field] != ref[field]:
                    fail(
                        f"size {name!r}: {other} disagrees with "
                        f"andersen-global on {field!r}"
                    )
        unify = by_name["unify-global"]
        if unify["checks"] < ref["checks"]:
            fail(
                f"size {name!r}: unify plan has fewer checks than "
                "Andersen's — unsound check elision"
            )
        if unify["warning_sites"] != ref["warning_sites"]:
            fail(
                f"size {name!r}: runtime warning count depends on the "
                "constraint engine"
            )

        if ref["vfg_nodes"] <= prev_nodes:
            fail(f"size {name!r}: VFG node count not strictly increasing")
        if size["instructions"] < prev_instrs:
            fail(f"size {name!r}: instruction count decreased")
        prev_nodes = ref["vfg_nodes"]
        prev_instrs = size["instructions"]

    summary = report.get("summary")
    if not isinstance(summary, dict):
        fail("missing 'summary'")
    first = sizes[0]["configs"][0]["vfg_nodes"]
    last = sizes[-1]["configs"][0]["vfg_nodes"]
    if summary.get("min_vfg_nodes") != first:
        fail("summary: min_vfg_nodes disagrees with the first size")
    if summary.get("max_vfg_nodes") != last:
        fail("summary: max_vfg_nodes disagrees with the last size")
    if not report["smoke"]:
        # The committed curve must actually span the claimed range:
        # roughly 1k nodes at the bottom, past 100k at the top.
        if first > 2500:
            fail(f"full run: smallest size has {first} VFG nodes (> 2500)")
        if last < 100000:
            fail(f"full run: largest size has {last} VFG nodes (< 100000)")
    print(f"check_bench_json: OK: {path} ({len(sizes)} sizes)")


def check_report(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")

    schema = report.get("schema")
    if schema == "usher-bench-solver-v1":
        check_solver_report(report, path)
    elif schema == "usher-bench-parallel-v1":
        check_parallel_report(report, path)
    elif schema == "usher-bench-summary-v1":
        check_summary_report(report, path)
    elif schema == "usher-bench-scale-v1":
        check_scale_report(report, path)
    else:
        fail(f"unexpected schema tag: {schema!r}")


def main(argv):
    if len(argv) == 3 and argv[1] == "--run-smoke":
        with tempfile.TemporaryDirectory() as tmp:
            out = os.path.join(tmp, "report.json")
            proc = subprocess.run([argv[2], "--smoke", f"--out={out}"])
            if proc.returncode != 0:
                fail(f"{argv[2]} --smoke exited with {proc.returncode}")
            check_report(out)
    elif len(argv) == 2 and not argv[1].startswith("-"):
        check_report(argv[1])
    else:
        print(__doc__, file=sys.stderr)
        sys.exit(2)


if __name__ == "__main__":
    main(sys.argv)
