#!/usr/bin/env python3
"""Schema validator for bench_solver's BENCH_solver.json.

Usage:
  check_bench_json.py FILE.json              validate an existing report
  check_bench_json.py --run-smoke BENCH_BIN  run `BENCH_BIN --smoke` into a
                                             temp file, then validate it

The bench-smoke ctest uses --run-smoke so the benchmark harness and its
machine-readable output stay covered without burning tier-1 time on the
full workload sizes. Speedup thresholds are deliberately NOT enforced for
smoke runs (tiny sizes measure nothing); for full runs the summary must
merely be well-formed — EXPERIMENTS.md records the expected >=2x.
"""

import json
import subprocess
import sys
import tempfile
import os

ENGINE_FIELDS = [
    "solve_ms",
    "propagations",
    "pops",
    "skipped_merged_pops",
    "collapses",
    "collapsed_nodes",
    "budget_steps",
]


def fail(msg):
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_engine(workload, key):
    engine = workload.get(key)
    if not isinstance(engine, dict):
        fail(f"workload {workload.get('name')!r}: missing engine block {key!r}")
    for field in ENGINE_FIELDS:
        value = engine.get(field)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            fail(
                f"workload {workload.get('name')!r} engine {key!r}: "
                f"field {field!r} missing or non-numeric: {value!r}"
            )
        if value < 0:
            fail(
                f"workload {workload.get('name')!r} engine {key!r}: "
                f"field {field!r} negative: {value!r}"
            )
    if engine["pops"] > engine["budget_steps"] + engine["skipped_merged_pops"]:
        fail(
            f"workload {workload.get('name')!r} engine {key!r}: pops exceed "
            "charged steps plus uncharged merged-pop skips"
        )


def check_report(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")

    if report.get("schema") != "usher-bench-solver-v1":
        fail(f"unexpected schema tag: {report.get('schema')!r}")
    if not isinstance(report.get("smoke"), bool):
        fail("missing boolean 'smoke' flag")
    if not isinstance(report.get("iterations"), int) or report["iterations"] < 1:
        fail("missing positive integer 'iterations'")

    workloads = report.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        fail("'workloads' missing or empty")
    names = set()
    for workload in workloads:
        name = workload.get("name")
        if not isinstance(name, str) or not name:
            fail("workload with missing name")
        if name in names:
            fail(f"duplicate workload name {name!r}")
        names.add(name)
        for field in ("nodes", "constraints"):
            if not isinstance(workload.get(field), int) or workload[field] <= 0:
                fail(f"workload {name!r}: bad {field!r}: {workload.get(field)!r}")
        check_engine(workload, "naive")
        check_engine(workload, "optimized")
        speedup = workload.get("speedup")
        if not isinstance(speedup, (int, float)) or speedup <= 0:
            fail(f"workload {name!r}: bad speedup: {speedup!r}")
        # Both engines solve the identical constraint system; collapsing
        # only ever reduces worklist traffic.
        if workload["optimized"]["pops"] > 4 * workload["naive"]["pops"] + 16:
            fail(
                f"workload {name!r}: optimized pop count wildly exceeds the "
                "reference's — difference propagation is not working"
            )

    summary = report.get("summary")
    if not isinstance(summary, dict):
        fail("missing 'summary'")
    for field in ("min_speedup", "geomean_speedup"):
        value = summary.get(field)
        if not isinstance(value, (int, float)) or value <= 0:
            fail(f"summary: bad {field!r}: {value!r}")
    if summary["min_speedup"] > summary["geomean_speedup"] + 1e-9:
        fail("summary: min_speedup exceeds geomean_speedup")

    print(f"check_bench_json: OK: {path} ({len(workloads)} workloads)")


def main(argv):
    if len(argv) == 3 and argv[1] == "--run-smoke":
        with tempfile.TemporaryDirectory() as tmp:
            out = os.path.join(tmp, "BENCH_solver.json")
            proc = subprocess.run([argv[2], "--smoke", f"--out={out}"])
            if proc.returncode != 0:
                fail(f"{argv[2]} --smoke exited with {proc.returncode}")
            check_report(out)
    elif len(argv) == 2 and not argv[1].startswith("-"):
        check_report(argv[1])
    else:
        print(__doc__, file=sys.stderr)
        sys.exit(2)


if __name__ == "__main__":
    main(sys.argv)
