#!/usr/bin/env python3
"""End-to-end scale check: synthesize one program, analyze it four ways.

Drives `usher-gen` to emit a synthesized program of the requested size,
runs it through `usher-cli` under the four engine/solver configurations

    --engine=global                  (Andersen, reference)
    --engine=summary                 (Andersen, bottom-up summaries)
    --engine=global  --solver=unify  (near-linear unification rung)
    --engine=summary --solver=unify

and asserts the *answers* agree: identical interpreter result and an
identical runtime warning set for every configuration (the unify rung may
plan more checks than Andersen — never fewer, and never different
warnings). With --min-vfg-nodes=N it additionally measures the program
via `usher-cli --stats --no-run` and requires at least N VFG nodes, so
the label-gated scale test proves the 100k+ acceptance size really went
through the full pipeline.

Usage:
  check_scale_smoke.py USHER_GEN USHER_CLI --nodes=N [--min-vfg-nodes=M]
                       [extra usher-gen flags...]

Exit: 0 and "check_scale_smoke: OK" on success, 1 on any mismatch.
"""

import os
import re
import subprocess
import sys
import tempfile


def fail(msg):
    print(f"check_scale_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run(cmd, ok_codes=(0,)):
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode not in ok_codes:
        fail(
            f"{' '.join(cmd)} exited with {proc.returncode}:\n{proc.stderr}"
        )
    return proc.stdout


CONFIGS = [
    ("global-andersen", ["--engine=global"]),
    ("summary-andersen", ["--engine=summary"]),
    ("global-unify", ["--engine=global", "--solver=unify"]),
    ("summary-unify", ["--engine=summary", "--solver=unify"]),
]

RESULT_RE = re.compile(r"result (-?\d+),.*shadow ops (\d+), checks (\d+)")


def parse_run(name, out):
    match = RESULT_RE.search(out)
    if not match:
        fail(f"{name}: no result line in output:\n{out}")
    warnings = sorted(
        line.strip() for line in out.splitlines() if "warning:" in line
    )
    return int(match.group(1)), int(match.group(3)), warnings


def main(argv):
    if len(argv) < 4:
        print(__doc__, file=sys.stderr)
        return 2
    gen_bin, cli_bin = argv[1], argv[2]
    min_nodes = 0
    gen_flags = []
    for arg in argv[3:]:
        if arg.startswith("--min-vfg-nodes="):
            min_nodes = int(arg.split("=", 1)[1])
        else:
            gen_flags.append(arg)

    with tempfile.TemporaryDirectory() as tmp:
        source = os.path.join(tmp, "scale.tc")
        run([gen_bin] + gen_flags + [f"--out={source}"])

        if min_nodes:
            stats = run([cli_bin, source, "--stats", "--no-run"])
            match = re.search(r"VFG nodes/edges:\s*(\d+)/(\d+)", stats)
            if not match:
                fail(f"no VFG node count in --stats output:\n{stats}")
            nodes = int(match.group(1))
            if nodes < min_nodes:
                fail(f"program has {nodes} VFG nodes, needed {min_nodes}")
            print(f"measured VFG nodes: {nodes} (>= {min_nodes})")

        runs = {}
        for name, flags in CONFIGS:
            # Exit 3 is usher-cli's "runtime warnings were reported" —
            # the expected outcome for a synthesized program with
            # uninitialized allocations.
            out = run([cli_bin, source] + flags, ok_codes=(0, 3))
            runs[name] = parse_run(name, out)

        ref_result, ref_checks, ref_warnings = runs["global-andersen"]
        if not ref_warnings:
            fail(
                "reference run reported no warnings — the synthesized "
                "program exercises nothing"
            )
        for name, (result, checks, warnings) in runs.items():
            if result != ref_result:
                fail(f"{name}: result {result} != reference {ref_result}")
            if warnings != ref_warnings:
                fail(
                    f"{name}: warning set diverged from reference:\n"
                    f"  reference: {ref_warnings}\n  {name}: {warnings}"
                )
            if checks < ref_checks:
                fail(
                    f"{name}: plans {checks} checks, fewer than the "
                    f"Andersen reference's {ref_checks} — unsound elision"
                )

    print(
        f"check_scale_smoke: OK ({len(CONFIGS)} configs, "
        f"{len(ref_warnings)} warning sites, result {ref_result})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
