#!/usr/bin/env python3
"""Schema validator for usher-fuzz's usher-fuzz-v1 report.

Usage:
  check_fuzz_json.py FILE.json              validate an existing report
  check_fuzz_json.py --run-smoke FUZZ_BIN   run `FUZZ_BIN --seed=7 --runs=8
                                            --json=tmp`, then validate it

The fuzz-smoke ctest uses --run-smoke so the campaign driver and its
machine-readable output stay covered in tier-1 without burning time on a
full campaign. A smoke campaign may legitimately contain divergences (the
binary then exits 3); the validator checks well-formedness and internal
consistency, not cleanliness — the separate fuzz_smoke test asserts the
campaign is clean.
"""

import json
import subprocess
import sys
import tempfile
import os

ORACLE_NAMES = [
    "variant-equivalence",
    "solver-equivalence",
    "diagnosis-soundness",
    "degradation-soundness",
    "serve-equivalence",
    "summary-equivalence",
    "query-equivalence",
    "client-consistency",
]

COUNTER_FIELDS = ["seed", "runs", "valid", "invalid", "corpus_size", "coverage_keys"]

SCHEDULED_FIELDS = ["generated", "mutated", "spliced", "wrapped"]


def fail(msg):
    print(f"check_fuzz_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_count(owner, obj, field):
    value = obj.get(field)
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        fail(f"{owner}: field {field!r} missing or not a count: {value!r}")
    return value


def check_report(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")

    if report.get("schema") != "usher-fuzz-v1":
        fail(f"unexpected schema tag: {report.get('schema')!r}")
    for field in COUNTER_FIELDS:
        check_count("report", report, field)
    if not isinstance(report.get("interrupted"), bool):
        fail(f"field 'interrupted' missing or not a bool: "
             f"{report.get('interrupted')!r}")

    scheduled = report.get("scheduled")
    if not isinstance(scheduled, dict):
        fail("missing 'scheduled' block")
    total = sum(check_count("scheduled", scheduled, f) for f in SCHEDULED_FIELDS)
    if total != report["runs"]:
        fail(f"scheduled inputs sum to {total}, expected runs={report['runs']}")
    if report["valid"] + report["invalid"] != report["runs"]:
        fail("valid + invalid does not equal runs")

    oracles = report.get("oracles")
    if not isinstance(oracles, list) or len(oracles) != len(ORACLE_NAMES):
        fail(f"'oracles' missing or not exactly {len(ORACLE_NAMES)} entries")
    seen = []
    for oracle in oracles:
        name = oracle.get("oracle")
        if name not in ORACLE_NAMES:
            fail(f"unknown oracle name {name!r}")
        seen.append(name)
        checked = check_count(f"oracle {name!r}", oracle, "checked")
        check_count(f"oracle {name!r}", oracle, "divergences")
        if checked > report["runs"]:
            fail(f"oracle {name!r}: checked {checked} exceeds runs")
    if seen != ORACLE_NAMES:
        fail(f"oracle names out of order or duplicated: {seen}")

    divergences = report.get("divergences")
    if not isinstance(divergences, list):
        fail("'divergences' missing")
    for i, div in enumerate(divergences):
        owner = f"divergence[{i}]"
        if div.get("oracle") not in ORACLE_NAMES:
            fail(f"{owner}: unknown oracle {div.get('oracle')!r}")
        run = check_count(owner, div, "run")
        if run >= report["runs"]:
            fail(f"{owner}: run index {run} out of range")
        orig = check_count(owner, div, "original_lines")
        reduced = check_count(owner, div, "reduced_lines")
        check_count(owner, div, "reduce_checks")
        if reduced > orig:
            fail(f"{owner}: reduction grew the program ({orig} -> {reduced})")
        for field in ("detail", "reduced_source"):
            if not isinstance(div.get(field), str) or not div[field]:
                fail(f"{owner}: missing {field!r}")
    total_diverged = sum(o["divergences"] for o in oracles)
    if divergences and total_diverged == 0:
        fail("divergence records present but per-oracle tallies are all zero")

    print(
        f"check_fuzz_json: OK: {path} "
        f"({report['runs']} runs, {len(divergences)} divergences)"
    )


def main(argv):
    if len(argv) == 3 and argv[1] == "--run-smoke":
        with tempfile.TemporaryDirectory() as tmp:
            out = os.path.join(tmp, "fuzz.json")
            proc = subprocess.run(
                [argv[2], "--seed=7", "--runs=8", f"--json={out}"],
                stdout=subprocess.DEVNULL,
            )
            # 0 = clean campaign, 3 = divergences found; both write a report.
            if proc.returncode not in (0, 3):
                fail(f"{argv[2]} exited with {proc.returncode}")
            check_report(out)
    elif len(argv) == 2 and not argv[1].startswith("-"):
        check_report(argv[1])
    else:
        print(__doc__, file=sys.stderr)
        sys.exit(2)


if __name__ == "__main__":
    main(sys.argv)
