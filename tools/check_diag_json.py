#!/usr/bin/env python3
"""Schema validator for usher-cli's --diag-json report (usher-diagnosis-v1).

Usage:
  check_diag_json.py FILE.json                validate an existing report
  check_diag_json.py --run-smoke CLI INPUT.tc run `CLI INPUT.tc --diagnose
                                              --diag-json=<tmp> --no-run`,
                                              then validate the output

The usher_cli_diag_json ctest uses --run-smoke over the diagnosis bug
corpus, so the CLI surface and the machine-readable schema stay covered
by tier-1. Verdicts are NOT pinned here (the C++ differential tests own
that); this checks that the report is structurally valid: consistent
summary counts, well-formed findings, and codeFlows whose edges carry
legal kinds and call-site labels.
"""

import json
import os
import subprocess
import sys
import tempfile

VERDICTS = {"may": "warning", "definite": "error"}
EDGE_KINDS = {"direct", "call", "ret"}
CLIENTS = {"uuv", "addrleak", "bounds"}


def fail(msg):
    print(f"check_diag_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_count(obj, field, where):
    value = obj.get(field)
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        fail(f"{where}: field {field!r} missing or not a count: {value!r}")
    return value


def check_str(obj, field, where, allow_empty=False):
    value = obj.get(field)
    if not isinstance(value, str) or (not allow_empty and not value):
        fail(f"{where}: field {field!r} missing or empty: {value!r}")
    return value


def check_code_flow(finding, where):
    flow = finding.get("codeFlow")
    if not isinstance(flow, list):
        fail(f"{where}: 'codeFlow' missing or not a list")
    if finding["verdict"] == "definite" and not flow:
        fail(f"{where}: DEFINITE finding with an empty codeFlow")
    for pos, step in enumerate(flow):
        swhere = f"{where} codeFlow[{pos}]"
        if not isinstance(step, dict):
            fail(f"{swhere}: not an object")
        check_count(step, "nodeId", swhere)
        check_str(step, "desc", swhere)
        edge = step.get("edgeToNext")
        last = pos == len(flow) - 1
        if last:
            if edge is not None:
                fail(f"{swhere}: final step carries an edge")
            continue
        if not isinstance(edge, dict):
            fail(f"{swhere}: interior step without 'edgeToNext'")
        kind = edge.get("kind")
        if kind not in EDGE_KINDS:
            fail(f"{swhere}: bad edge kind {kind!r}")
        if kind in ("call", "ret"):
            check_count(edge, "callSite", swhere)
    if flow:
        if flow[0]["desc"] != "F":
            fail(f"{where}: codeFlow does not start at the F root")


def check_report(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")

    if report.get("schema") != "usher-diagnosis-v1":
        fail(f"unexpected schema tag: {report.get('schema')!r}")

    summary = report.get("summary")
    if not isinstance(summary, dict):
        fail("missing 'summary'")
    uses = check_count(summary, "critical_uses", "summary")
    clean = check_count(summary, "clean", "summary")
    may = check_count(summary, "may", "summary")
    definite = check_count(summary, "definite", "summary")
    if clean + may + definite != uses:
        fail(
            f"summary counts do not add up: {clean}+{may}+{definite} "
            f"!= {uses}"
        )

    findings = report.get("findings")
    if not isinstance(findings, list):
        fail("'findings' missing or not a list")
    if len(findings) != may + definite:
        fail(
            f"{len(findings)} findings for {may} may + {definite} "
            "definite verdicts"
        )

    seen = {"may": 0, "definite": 0}
    for idx, finding in enumerate(findings):
        where = f"finding[{idx}]"
        if not isinstance(finding, dict):
            fail(f"{where}: not an object")
        if finding.get("ruleId") != "usher-uuv":
            fail(f"{where}: bad ruleId {finding.get('ruleId')!r}")
        client = finding.get("client")
        if client not in CLIENTS:
            fail(f"{where}: bad client {client!r}")
        if finding["ruleId"] != f"usher-{client}":
            fail(f"{where}: client {client!r} disagrees with ruleId")
        verdict = finding.get("verdict")
        if verdict not in VERDICTS:
            fail(f"{where}: bad verdict {verdict!r}")
        seen[verdict] += 1
        if finding.get("severity") != VERDICTS[verdict]:
            fail(
                f"{where}: severity {finding.get('severity')!r} does not "
                f"match verdict {verdict!r}"
            )
        check_str(finding, "function", where)
        check_count(finding, "instructionId", where)
        check_str(finding, "instruction", where)
        check_str(finding, "var", where)
        loc = finding.get("location")
        if not isinstance(loc, dict):
            fail(f"{where}: missing 'location'")
        check_count(loc, "line", f"{where} location")
        check_count(loc, "col", f"{where} location")
        check_code_flow(finding, where)

    if seen["may"] != may or seen["definite"] != definite:
        fail(
            f"finding verdicts ({seen['may']} may, {seen['definite']} "
            f"definite) disagree with the summary ({may} may, "
            f"{definite} definite)"
        )

    print(f"check_diag_json: OK: {path} ({len(findings)} findings)")


def main(argv):
    if len(argv) == 4 and argv[1] == "--run-smoke":
        with tempfile.TemporaryDirectory() as tmp:
            out = os.path.join(tmp, "diag.json")
            proc = subprocess.run(
                [argv[2], argv[3], "--diagnose", f"--diag-json={out}",
                 "--no-run"]
            )
            if proc.returncode != 0:
                fail(f"{argv[2]} exited with {proc.returncode}")
            check_report(out)
    elif len(argv) == 2 and not argv[1].startswith("-"):
        check_report(argv[1])
    else:
        print(__doc__, file=sys.stderr)
        sys.exit(2)


if __name__ == "__main__":
    main(sys.argv)
