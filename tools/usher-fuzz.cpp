//===- tools/usher-fuzz.cpp - Differential fuzzing CLI --------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line driver for the coverage-guided differential fuzzer:
///
///   usher-fuzz --seed=42 --runs=500 --json=report.json
///
/// Runs one campaign (see src/fuzz/Fuzzer.h), prints a human-readable
/// summary to stdout and, on request, the machine-readable report
/// (schema "usher-fuzz-v1", validated by tools/check_fuzz_json.py) to a
/// file or stdout. The campaign — scheduling, reduction, and both
/// outputs — is a deterministic function of --seed.
///
/// Exit codes: 0 = campaign clean, 2 = usage error, 3 = divergences,
/// 5 = interrupted (SIGINT/SIGTERM) — the partial campaign summary and
/// JSON report are flushed before exiting.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "support/RawStream.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace usher;

namespace {

/// Raised by SIGINT/SIGTERM; the campaign stops at the next round
/// boundary and the (partial) report is still printed and flushed.
std::atomic<bool> InterruptRaised{false};

void onSignal(int) { InterruptRaised.store(true, std::memory_order_relaxed); }

struct CliOptions {
  fuzz::FuzzOptions Fuzz;
  std::string JsonPath; ///< Empty = no JSON; "-" = stdout.
};

void printUsage(raw_ostream &OS) {
  OS << "usage: usher-fuzz [options]\n"
     << "  --seed=N        campaign seed (default 1)\n"
     << "  --runs=N        inputs to schedule (default 256)\n"
     << "  --json=PATH     write the usher-fuzz-v1 report (- for stdout)\n"
     << "  --no-reduce     report divergences without minimizing them\n"
     << "  --seed-corpus-synth=N\n"
     << "                  seed the corpus with N synthesized mid-size\n"
     << "                  programs before round 0 (default 0)\n"
     << "  --max-corpus=N  corpus capacity (default 64)\n"
     << "  --max-steps=N   interpreter step budget per run\n"
     << "  --jobs=N        campaign worker threads (default 1 = serial;\n"
     << "                  0 = all cores; report is byte-identical for\n"
     << "                  every value)\n";
}

bool parseUInt(const std::string &Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  char *End = nullptr;
  Out = std::strtoull(Text.c_str(), &End, 10);
  return End && *End == '\0';
}

bool parseArgs(int Argc, char **Argv, CliOptions &Cli) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    uint64_t N = 0;
    if (Arg.rfind("--seed=", 0) == 0) {
      if (!parseUInt(Arg.substr(7), N))
        return false;
      Cli.Fuzz.Seed = N;
    } else if (Arg.rfind("--runs=", 0) == 0) {
      if (!parseUInt(Arg.substr(7), N))
        return false;
      Cli.Fuzz.Runs = static_cast<unsigned>(N);
    } else if (Arg.rfind("--json=", 0) == 0) {
      Cli.JsonPath = Arg.substr(7);
    } else if (Arg == "--no-reduce") {
      Cli.Fuzz.Reduce = false;
    } else if (Arg.rfind("--seed-corpus-synth=", 0) == 0) {
      if (!parseUInt(Arg.substr(20), N) || N > 1024)
        return false;
      Cli.Fuzz.SeedCorpusSynth = static_cast<unsigned>(N);
    } else if (Arg.rfind("--max-corpus=", 0) == 0) {
      if (!parseUInt(Arg.substr(13), N) || N == 0)
        return false;
      Cli.Fuzz.MaxCorpus = static_cast<unsigned>(N);
    } else if (Arg.rfind("--max-steps=", 0) == 0) {
      if (!parseUInt(Arg.substr(12), N) || N == 0)
        return false;
      Cli.Fuzz.Oracle.MaxSteps = N;
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      if (!parseUInt(Arg.substr(7), N) || N > 64)
        return false;
      Cli.Fuzz.Jobs = static_cast<unsigned>(N);
    } else {
      return false;
    }
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Cli;
  if (!parseArgs(Argc, Argv, Cli)) {
    printUsage(errs());
    return 2;
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  Cli.Fuzz.Stop = &InterruptRaised;

  fuzz::FuzzReport Rep = fuzz::runFuzzer(Cli.Fuzz);

  raw_ostream &OS = outs();
  OS << "usher-fuzz: seed " << Rep.Seed << ", " << Rep.Runs << " runs ("
     << Rep.NumValid << " valid, " << Rep.NumInvalid << " invalid)"
     << (Rep.Interrupted ? " [interrupted]" : "") << "\n";
  OS << "  scheduled: " << Rep.NumGenerated << " generated, "
     << Rep.NumMutated << " mutated, " << Rep.NumSpliced << " spliced, "
     << Rep.NumWrapped << " wrapped\n";
  OS << "  corpus: " << Rep.CorpusSize << " entries, " << Rep.CoverageKeys
     << " coverage keys\n";
  for (unsigned K = 0; K != fuzz::NumOracleKinds; ++K)
    OS << "  oracle " << fuzz::oracleKindName(static_cast<fuzz::OracleKind>(K))
       << ": " << Rep.OracleChecked[K] << " checked, "
       << Rep.OracleDiverged[K] << " divergences\n";
  OS << "divergences: " << Rep.Divergences.size() << "\n";
  for (const fuzz::DivergenceRecord &D : Rep.Divergences)
    OS << "  [" << fuzz::oracleKindName(D.Oracle) << "] run " << D.Run
       << ": " << D.Detail << " (" << D.OriginalLines << " -> "
       << D.ReducedLines << " lines)\n";

  if (!Cli.JsonPath.empty()) {
    if (Cli.JsonPath == "-") {
      Rep.printJson(outs());
    } else {
      std::FILE *FP = std::fopen(Cli.JsonPath.c_str(), "w");
      if (!FP) {
        errs() << "error: cannot open " << Cli.JsonPath << " for writing\n";
        return 2;
      }
      raw_fd_ostream JOS(FP);
      Rep.printJson(JOS);
      JOS.flush();
      std::fclose(FP);
    }
  }

  if (Rep.Interrupted)
    return 5; // Partial campaign; summary and JSON were flushed above.
  return Rep.clean() ? 0 : 3;
}
