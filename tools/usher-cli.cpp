//===- tools/usher-cli.cpp - Command-line driver ----------------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command-line front end: analyze, instrument and run TinyC programs.
///
///   usher-cli prog.tc                 analyze + run under full Usher
///   usher-cli prog.tc --variant=msan  pick the tool variant
///   usher-cli prog.tc --opt=O1        apply an optimization preset first
///   usher-cli prog.tc --compare       run every variant side by side
///   usher-cli prog.tc --stats         print the Table 1 statistics
///   usher-cli prog.tc --print-ir      dump the (transformed) module
///   usher-cli prog.tc --dot           dump the VFG in Graphviz syntax
///                                     (verdict-annotated with --diagnose)
///   usher-cli prog.tc --diagnose      static UUV diagnosis: classify every
///                                     critical op CLEAN/MAY/DEFINITE and
///                                     print witness value-flow paths
///   usher-cli prog.tc --diag-json=F   also write the diagnosis report as
///                                     JSON (schema usher-diagnosis-v1)
///   usher-cli prog.tc --no-run        static analysis only
///   usher-cli prog.tc --budget-ms=N   per-phase analysis deadline
///   usher-cli prog.tc --budget-steps=N  per-phase step budget
///   usher-cli prog.tc --inject-fault=pta@0  force budget exhaustion
///   usher-cli prog.tc --solver=andersen|naive|unify
///                                     pick the constraint-solving engine
///   usher-cli prog.tc --naive-solver  alias for --solver=naive
///   usher-cli prog.tc --query 3 17    demand CFL-reachability query: can
///                                     VFG node 3 flow to node 17? Runs the
///                                     unification fast lane by default (no
///                                     whole-program Andersen resolution)
///   usher-cli prog.tc --jobs=8        run the parallel analysis phases on
///                                     8 workers (output byte-identical to
///                                     --jobs=1)
///   usher-cli prog.tc --client=uuv,addrleak,bounds
///                                     sanitizer clients to plan and run in
///                                     a single pass over one VFG (default:
///                                     uuv only)
///   usher-cli prog.tc --bounds-budget=10
///                                     bounds client: cap the modeled
///                                     slowdown of placed bounds checks at
///                                     10% (0 = unlimited)
///
/// Exit codes: 0 success (including degraded analysis — a note goes to
/// stderr), 2 usage/parse/input error, 3 runtime warnings were reported,
/// 4 execution hit a resource limit.
///
//===----------------------------------------------------------------------===//

#include "core/StaticDiagnosis.h"
#include "core/Usher.h"
#include "parser/Parser.h"
#include "runtime/Interpreter.h"
#include "support/FaultInjection.h"
#include "support/RawStream.h"
#include "support/ThreadPool.h"
#include "transforms/Transforms.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace usher;

namespace {

// Exit codes (documented in the usage banner).
constexpr int ExitSuccess = 0;      // Also used for degraded analyses.
constexpr int ExitInputError = 2;   // Bad usage, unreadable or unparsable
                                    // input.
constexpr int ExitWarnings = 3;     // The instrumented run reported
                                    // undefined-value uses.
constexpr int ExitLimits = 4;       // Execution limits exceeded.
constexpr int ExitInterrupted = 5;  // SIGINT/SIGTERM; partial output was
                                    // flushed before exiting.

/// Raised by the SIGINT/SIGTERM handler; the interpreter polls it and
/// stops cooperatively, so the report (and any --diag-json file) is
/// flushed rather than lost.
std::atomic<bool> InterruptRaised{false};

void onSignal(int) { InterruptRaised.store(true, std::memory_order_relaxed); }

struct CliOptions {
  std::string InputPath;
  core::ToolVariant Variant = core::ToolVariant::UsherFull;
  transforms::OptPreset Preset = transforms::OptPreset::O0IM;
  bool Compare = false;
  bool Stats = false;
  bool PrintIR = false;
  bool DumpDot = false;
  bool Diagnose = false;
  std::string DiagJsonPath;
  bool Run = true;
  bool ListFaultSites = false;
  bool Query = false;
  uint64_t QuerySrc = 0;
  uint64_t QuerySink = 0;
  analysis::SolverKind Solver = analysis::SolverKind::Optimized;
  /// --solver=/--naive-solver was given explicitly; --query defaults to
  /// the unification engine otherwise.
  bool SolverGiven = false;
  core::EngineKind Engine = core::EngineKind::Global;
  BudgetLimits Limits;
  std::optional<FaultPlan> Fault;
  uint64_t Jobs = 1;
  /// --client= selections, in the order given; empty = UUV only (the
  /// legacy single-client pipeline, output byte-identical).
  std::vector<core::ClientKind> Clients;
  unsigned BoundsBudgetPercent = 0;
};

int usage(const char *Argv0) {
  errs() << "usage: " << Argv0
         << " <program.tc> [--variant=msan|tl|tlat|opti|usher] "
            "[--opt=O0|O1|O2] [--compare] [--stats] [--print-ir] [--dot] "
            "[--no-run] [--solver=andersen|naive|unify] [--budget-ms=<N>] "
            "[--budget-steps=<N>] [--inject-fault=<phase>@<step>[:once|:<n>]] "
            "[--diagnose] [--diag-json=<file>] [--jobs=<N>] "
            "[--engine=global|summary] [--query <srcId> <sinkId>] "
            "[--client=<c>[,<c>...]] [--bounds-budget=<pct>]\n"
            "\n"
            "  --client=<c>[,<c>...]\n"
            "                      sanitizer clients to plan and run in one\n"
            "                      pass: uuv (use of undefined values,\n"
            "                      default), addrleak (allocated addresses\n"
            "                      escaping to globals or main's return),\n"
            "                      bounds (out-of-bounds pointer formation)\n"
            "  --bounds-budget=<pct>\n"
            "                      bounds client: budgeted check placement,\n"
            "                      capping modeled slowdown at <pct>% of\n"
            "                      native cost (default 0 = unlimited)\n"
            "\n"
            "  --jobs=<N>          worker threads for the parallel analysis\n"
            "                      phases (default 1 = serial; 0 = all\n"
            "                      cores). Output is byte-identical for\n"
            "                      every value of N.\n"
            "  --engine=global|summary\n"
            "                      definedness engine: the whole-program\n"
            "                      fixpoint (default) or the bottom-up\n"
            "                      per-function summary engine (same\n"
            "                      warnings; SCC-parallel and cacheable).\n"
            "\n"
            "  --diagnose          classify every critical operation as\n"
            "                      CLEAN, MAY-UUV or DEFINITE-UUV and print\n"
            "                      a witness value-flow path per finding\n"
            "  --diag-json=<file>  write the diagnosis report as JSON\n"
            "                      (schema usher-diagnosis-v1); implies\n"
            "                      --diagnose\n"
            "\n"
            "  --solver=andersen|naive|unify\n"
            "                      constraint-solving engine: the optimized\n"
            "                      Andersen solver (default), the reference\n"
            "                      full-set Andersen engine, or the\n"
            "                      near-linear unification solver (sound\n"
            "                      over-approximation of Andersen)\n"
            "  --naive-solver      alias for --solver=naive\n"
            "\n"
            "  --query <srcId> <sinkId>\n"
            "                      demand query: is VFG node <sinkId>\n"
            "                      context-validly reachable from <srcId>?\n"
            "                      Prints the verdict and a witness path.\n"
            "                      Defaults to --solver=unify --no-run; exits\n"
            "                      0 on a conclusive answer, 4 if a budget\n"
            "                      ran out first\n"
            "\n"
            "budgets & degradation:\n"
            "  --budget-ms=<N>     wall-clock deadline per analysis phase\n"
            "  --budget-steps=<N>  worklist-iteration budget per phase\n"
            "  --inject-fault=<phase>@<step>[:once|:<n>]\n"
            "                      deterministically exhaust a phase's\n"
            "                      budget (phase: pta|definedness|opt1|opt2;\n"
            "                      :<n> = first n arms only;\n"
            "                      also via $" << FaultInjectionEnvVar << ")\n"
            "  A phase that runs out of budget never fails the run: the\n"
            "  driver degrades along USHER -> USHER-OPTI -> unify-backed\n"
            "  USHER-TL+AT -> USHER-TL -> MSAN and notes the degradation on\n"
            "  stderr (Andersen exhaustion retries field-insensitive, then\n"
            "  the unification solver, before giving up points-to info).\n"
            "\n"
            "exit codes:\n"
            "  0  success (including degraded analysis)\n"
            "  2  usage, unreadable input, or parse error\n"
            "  3  the instrumented run reported undefined-value uses\n"
            "  4  execution limits exceeded\n"
            "  5  interrupted (SIGINT/SIGTERM); partial output flushed\n"
            "\n"
            "  --list-fault-sites  print every deterministic fault site\n"
            "                      (budget phases and I/O sites) and exit\n";
  return ExitInputError;
}

bool parseUInt(std::string_view Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  Out = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    Out = Out * 10 + static_cast<uint64_t>(C - '0');
  }
  return true;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  for (int I = 1; I != Argc; ++I) {
    std::string_view Arg = Argv[I];
    if (Arg == "--compare") {
      Opts.Compare = true;
    } else if (Arg == "--stats") {
      Opts.Stats = true;
    } else if (Arg == "--print-ir") {
      Opts.PrintIR = true;
    } else if (Arg == "--dot") {
      Opts.DumpDot = true;
    } else if (Arg == "--diagnose") {
      Opts.Diagnose = true;
    } else if (Arg.rfind("--diag-json=", 0) == 0) {
      Opts.DiagJsonPath = std::string(Arg.substr(12));
      Opts.Diagnose = true;
      if (Opts.DiagJsonPath.empty())
        return false;
    } else if (Arg == "--no-run") {
      Opts.Run = false;
    } else if (Arg == "--list-fault-sites") {
      Opts.ListFaultSites = true;
    } else if (Arg == "--naive-solver") {
      Opts.Solver = analysis::SolverKind::NaiveReference;
      Opts.SolverGiven = true;
    } else if (Arg.rfind("--solver=", 0) == 0) {
      std::string_view S = Arg.substr(9);
      if (S == "andersen")
        Opts.Solver = analysis::SolverKind::Optimized;
      else if (S == "naive")
        Opts.Solver = analysis::SolverKind::NaiveReference;
      else if (S == "unify")
        Opts.Solver = analysis::SolverKind::Unify;
      else
        return false;
      Opts.SolverGiven = true;
    } else if (Arg == "--query") {
      if (I + 2 >= Argc || !parseUInt(Argv[I + 1], Opts.QuerySrc) ||
          !parseUInt(Argv[I + 2], Opts.QuerySink) ||
          Opts.QuerySrc > 0xffffffffull || Opts.QuerySink > 0xffffffffull)
        return false;
      Opts.Query = true;
      I += 2;
    } else if (Arg.rfind("--variant=", 0) == 0) {
      std::string_view V = Arg.substr(10);
      if (V == "msan")
        Opts.Variant = core::ToolVariant::MSanFull;
      else if (V == "tl")
        Opts.Variant = core::ToolVariant::UsherTL;
      else if (V == "tlat")
        Opts.Variant = core::ToolVariant::UsherTLAT;
      else if (V == "opti")
        Opts.Variant = core::ToolVariant::UsherOptI;
      else if (V == "usher")
        Opts.Variant = core::ToolVariant::UsherFull;
      else
        return false;
    } else if (Arg.rfind("--opt=", 0) == 0) {
      std::string_view P = Arg.substr(6);
      if (P == "O0" || P == "O0+IM")
        Opts.Preset = transforms::OptPreset::O0IM;
      else if (P == "O1")
        Opts.Preset = transforms::OptPreset::O1;
      else if (P == "O2")
        Opts.Preset = transforms::OptPreset::O2;
      else
        return false;
    } else if (Arg.rfind("--engine=", 0) == 0) {
      std::string_view E = Arg.substr(9);
      if (E == "global")
        Opts.Engine = core::EngineKind::Global;
      else if (E == "summary")
        Opts.Engine = core::EngineKind::Summary;
      else
        return false;
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      if (!parseUInt(Arg.substr(7), Opts.Jobs) || Opts.Jobs > 64)
        return false;
    } else if (Arg.rfind("--client=", 0) == 0) {
      std::string_view List = Arg.substr(9);
      if (List.empty())
        return false;
      for (;;) {
        size_t Comma = List.find(',');
        core::ClientKind K;
        if (!core::parseClientName(std::string(List.substr(0, Comma)), K))
          return false;
        Opts.Clients.push_back(K);
        if (Comma == std::string_view::npos)
          break;
        List.remove_prefix(Comma + 1);
      }
    } else if (Arg.rfind("--bounds-budget=", 0) == 0) {
      uint64_t Pct;
      if (!parseUInt(Arg.substr(16), Pct) || Pct > 10000)
        return false;
      Opts.BoundsBudgetPercent = static_cast<unsigned>(Pct);
    } else if (Arg.rfind("--budget-ms=", 0) == 0) {
      if (!parseUInt(Arg.substr(12), Opts.Limits.PhaseDeadlineMs))
        return false;
    } else if (Arg.rfind("--budget-steps=", 0) == 0) {
      if (!parseUInt(Arg.substr(15), Opts.Limits.MaxStepsPerPhase))
        return false;
    } else if (Arg.rfind("--inject-fault=", 0) == 0) {
      std::string Err;
      Opts.Fault = parseFaultSpec(Arg.substr(15), &Err);
      if (!Opts.Fault) {
        errs() << "error: " << Err << '\n';
        return false;
      }
    } else if (!Arg.empty() && Arg[0] != '-' && Opts.InputPath.empty()) {
      Opts.InputPath = Arg;
    } else {
      return false;
    }
  }
  return Opts.ListFaultSites || !Opts.InputPath.empty();
}

std::string readFile(const std::string &Path, bool &Ok) {
  std::FILE *FP = std::fopen(Path.c_str(), "rb");
  if (!FP) {
    Ok = false;
    return {};
  }
  std::string Contents;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), FP)) > 0)
    Contents.append(Buf, N);
  std::fclose(FP);
  Ok = true;
  return Contents;
}

void reportRun(raw_ostream &OS, const char *Tool,
               const runtime::ExecutionReport &Rep) {
  OS << '[';
  OS.leftJustify(Tool, 12);
  OS << "] ";
  if (Rep.Reason == runtime::ExitReason::Trap) {
    OS << "trapped: " << Rep.TrapMessage << '\n';
    return;
  }
  if (Rep.Reason == runtime::ExitReason::StepLimit) {
    OS << "stopped: step limit exceeded\n";
    return;
  }
  if (Rep.Reason == runtime::ExitReason::Interrupted) {
    OS << "interrupted after " << Rep.Steps << " steps, shadow ops "
       << Rep.DynShadowOps << ", checks " << Rep.DynChecks << '\n';
    return;
  }
  OS << "result " << Rep.MainResult << ", slowdown "
     << static_cast<int>(Rep.slowdownPercent()) << "%, shadow ops "
     << Rep.DynShadowOps << ", checks " << Rep.DynChecks << '\n';
  for (const runtime::Warning &W : Rep.ToolWarnings) {
    OS << "  warning: ";
    if (W.At->getLoc().isValid())
      OS << W.At->getLoc().Line << ':' << W.At->getLoc().Col << ": ";
    OS << "use of undefined value in "
       << W.At->getParent()->getParent()->getName() << " at \"";
    W.At->print(OS);
    OS << "\" (x" << W.Occurrences << ")\n";
  }
}

/// Like reportRun, but for one client of a multi-client run: the base
/// execution facts are shared, the shadow counters and warnings come from
/// that client's plan.
void reportClientRun(raw_ostream &OS, std::string_view Tool,
                     const runtime::ExecutionReport &Rep,
                     const runtime::PlanReport &PR, const char *WarnText) {
  OS << '[';
  OS.leftJustify(Tool, 12);
  OS << "] ";
  if (Rep.Reason == runtime::ExitReason::Trap) {
    OS << "trapped: " << Rep.TrapMessage << '\n';
    return;
  }
  if (Rep.Reason == runtime::ExitReason::StepLimit) {
    OS << "stopped: step limit exceeded\n";
    return;
  }
  if (Rep.Reason == runtime::ExitReason::Interrupted) {
    OS << "interrupted after " << Rep.Steps << " steps, shadow ops "
       << PR.DynShadowOps << ", checks " << PR.DynChecks << '\n';
    return;
  }
  double Slowdown =
      Rep.BaseCost > 0 ? 100.0 * PR.ShadowCost / Rep.BaseCost : 0.0;
  OS << "result " << Rep.MainResult << ", slowdown "
     << static_cast<int>(Slowdown) << "%, shadow ops " << PR.DynShadowOps
     << ", checks " << PR.DynChecks << '\n';
  for (const runtime::Warning &W : PR.ToolWarnings) {
    OS << "  warning: ";
    if (W.At->getLoc().isValid())
      OS << W.At->getLoc().Line << ':' << W.At->getLoc().Col << ": ";
    OS << WarnText << " in " << W.At->getParent()->getParent()->getName()
       << " at \"";
    W.At->print(OS);
    OS << "\" (x" << W.Occurrences << ")\n";
  }
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return usage(Argv[0]);
  if (Opts.ListFaultSites) {
    for (const std::string &Name : allFaultSiteNames())
      outs() << Name << '\n';
    return ExitSuccess;
  }
  if (!Opts.Fault)
    Opts.Fault = faultPlanFromEnv();

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  bool Ok = false;
  std::string Source = readFile(Opts.InputPath, Ok);
  if (!Ok) {
    errs() << Opts.InputPath << ": error: cannot open file\n";
    return ExitInputError;
  }

  parser::ParseResult Parsed = parser::parseModule(Source);
  if (!Parsed.succeeded()) {
    for (const std::string &E : Parsed.Errors)
      errs() << Opts.InputPath << ':' << E << '\n';
    return ExitInputError;
  }
  ir::Module &M = *Parsed.M;
  unsigned Jobs = Opts.Jobs == 0 ? ThreadPool::defaultJobs()
                                 : static_cast<unsigned>(Opts.Jobs);
  std::unique_ptr<ThreadPool> Pool;
  if (Jobs > 1)
    Pool = std::make_unique<ThreadPool>(Jobs);
  transforms::runPreset(M, Opts.Preset, Pool.get());

  raw_ostream &OS = outs();
  if (Opts.PrintIR)
    M.print(OS);

  if (Opts.Query) {
    core::UsherOptions UO;
    // The demand fast lane: unification-backed points-to unless the user
    // explicitly asked for an Andersen engine.
    UO.Pta.Solver =
        Opts.SolverGiven ? Opts.Solver : analysis::SolverKind::Unify;
    UO.Limits = Opts.Limits;
    UO.Fault = Opts.Fault;
    core::QueryOutcome Q =
        core::runUsherQuery(M, UO, static_cast<uint32_t>(Opts.QuerySrc),
                            static_cast<uint32_t>(Opts.QuerySink));
    if (!Q.Valid) {
      errs() << Opts.InputPath << ": error: " << Q.Error << '\n';
      return ExitInputError;
    }
    OS << "query " << Opts.QuerySrc << " -> " << Opts.QuerySink << ": "
       << (Q.Exhausted    ? "inconclusive (budget exhausted)"
           : Q.Reachable  ? "reachable"
                          : "unreachable")
       << '\n'
       << "solver engine: " << analysis::solverKindName(Q.Solver.Engine)
       << '\n'
       << "states visited: " << Q.StatesVisited << '\n';
    if (Q.Reachable && !Q.Witness.empty()) {
      OS << "witness: " << Q.Witness.front().Node;
      for (size_t I = 1; I != Q.Witness.size(); ++I) {
        const analysis::QueryStep &S = Q.Witness[I];
        switch (S.Kind) {
        case vfg::EdgeKind::Direct:
          OS << " -> ";
          break;
        case vfg::EdgeKind::Call:
          OS << " -call@" << S.CallSite << "-> ";
          break;
        case vfg::EdgeKind::Ret:
          OS << " -ret@" << S.CallSite << "-> ";
          break;
        }
        OS << S.Node;
      }
      OS << '\n';
    }
    return Q.Exhausted ? ExitLimits : ExitSuccess;
  }

  const core::ToolVariant Variants[] = {
      core::ToolVariant::MSanFull, core::ToolVariant::UsherTL,
      core::ToolVariant::UsherTLAT, core::ToolVariant::UsherOptI,
      core::ToolVariant::UsherFull};
  std::vector<core::ToolVariant> ToRun;
  if (Opts.Compare)
    ToRun.assign(std::begin(Variants), std::end(Variants));
  else
    ToRun.push_back(Opts.Variant);

  int ExitCode = ExitSuccess;
  for (core::ToolVariant V : ToRun) {
    core::UsherOptions UO;
    UO.Variant = V;
    UO.Pta.Solver = Opts.Solver;
    UO.Engine = Opts.Engine;
    UO.Limits = Opts.Limits;
    UO.Fault = Opts.Fault;
    UO.Jobs = Jobs;
    UO.Clients = Opts.Clients;
    UO.BoundsBudgetPercent = Opts.BoundsBudgetPercent;
    core::UsherResult R = core::runUsher(M, UO);
    if (R.Degradation.Degraded)
      errs() << "note: analysis degraded: " << R.Degradation.summary()
             << '\n';

    if (Opts.Stats && !Opts.Compare) {
      const core::UsherStatistics &S = R.Stats;
      OS << "instructions:         " << S.NumInstructions << '\n'
         << "top-level variables:  " << S.NumTopLevelVars << '\n'
         << "objects (stack/heap/global): " << S.NumStackObjects << '/'
         << S.NumHeapObjects << '/' << S.NumGlobalObjects << '\n'
         << "uninitialized allocs: "
         << static_cast<int>(S.PercentUninitObjects) << "%\n"
         << "VFG nodes/edges:      " << S.NumVFGNodes << '/'
         << S.NumVFGEdges << '\n'
         << "store updates strong/weak: "
         << static_cast<int>(S.PercentStrongStores) << "%/"
         << static_cast<int>(S.PercentWeakStores) << "%\n"
         << "static propagations:  " << S.StaticPropagations << '\n'
         << "static checks:        " << S.StaticChecks << '\n'
         << "solver engine:        "
         << analysis::solverKindName(S.Solver.Engine) << '\n'
         << "solver constraints:   " << S.Solver.NumConstraints << '\n'
         << "solver propagations:  " << S.Solver.NumPropagations << '\n'
         << "solver collapses:     " << S.Solver.NumCollapses << " ("
         << S.Solver.NumCollapsedNodes << " nodes)\n"
         << "unified cells:        " << S.Solver.NumUnifiedCells << '\n';
      if (Opts.Engine == core::EngineKind::Summary)
        OS << "engine:               summary (" << S.Summary.NumFunctions
           << " functions, " << S.Summary.NumSCCs << " SCCs)\n"
           << "summaries computed:   " << S.Summary.SummariesComputed << '\n'
           << "summaries pruned:     " << S.Summary.PrunedTransfers
           << " transfers, " << S.Summary.MergedContexts << " merged, "
           << S.Summary.PrunedCalleeEntries << " callee entries\n"
           << "realized boundary facts: " << S.Summary.RealizedBoundaryFacts
           << '\n';
      OS << "analysis time:        " << S.AnalysisSeconds * 1000 << " ms\n";
      for (const core::ClientPlanInfo &CP : R.ClientPlans) {
        OS << "client " << core::clientName(CP.Kind) << ":       sinks "
           << CP.SinkCandidates << ", unsafe " << CP.UnsafeSinks
           << ", checks placed " << CP.ChosenChecks << '\n';
        if (CP.Kind == core::ClientKind::Bounds && CP.PlacementCapacity)
          OS << "  placement:          cost " << CP.PlacementCost
             << " of capacity " << CP.PlacementCapacity
             << (CP.CapacityBound ? " (capacity-bound)" : "") << '\n';
      }
    }
    std::unique_ptr<core::StaticDiagnosis> Diag;
    if (Opts.Diagnose && !Opts.Compare) {
      if (R.G && R.PA && R.CG) {
        Diag = std::make_unique<core::StaticDiagnosis>(*R.PA, *R.CG, *R.G);
        Diag->printText(OS);
        if (!Opts.DiagJsonPath.empty()) {
          std::FILE *FP = std::fopen(Opts.DiagJsonPath.c_str(), "wb");
          if (!FP) {
            errs() << Opts.DiagJsonPath << ": error: cannot write file\n";
            return ExitInputError;
          }
          raw_fd_ostream JS(FP);
          Diag->printJson(JS);
          JS.flush();
          std::fclose(FP);
        }
      } else {
        errs() << "note: --diagnose needs the analysis pipeline; "
                  "unavailable for this variant or degradation rung\n";
      }
    }
    if (Opts.DumpDot && !Opts.Compare && R.G) {
      if (Diag) {
        std::vector<vfg::VFG::DotVerdict> Verdicts = Diag->dotVerdicts();
        R.G->dumpDot(OS, &Verdicts);
      } else {
        R.G->dumpDot(OS);
      }
    }

    if (Opts.Run && Opts.Clients.empty()) {
      runtime::ExecLimits Limits;
      Limits.Interrupt = &InterruptRaised;
      runtime::ExecutionReport Rep =
          runtime::Interpreter(M, &R.Plan, runtime::CostModel(), Limits).run();
      reportRun(OS, core::toolVariantName(V), Rep);
      if (!Rep.ToolWarnings.empty())
        ExitCode = ExitWarnings; // Like a sanitizer: nonzero on bugs.
      if (Rep.Reason != runtime::ExitReason::Finished)
        ExitCode = ExitLimits;
      if (Rep.Reason == runtime::ExitReason::Interrupted) {
        // Everything produced so far (including any --diag-json file) is
        // already flushed; make the interruption visible to callers.
        OS.flush();
        return ExitInterrupted;
      }
    } else if (Opts.Run) {
      // Multi-client: one base execution, one shadow plane per client.
      // "uuv" maps to the pipeline's own plan; the other clients' plans
      // come from R.ClientPlans in request order.
      std::vector<runtime::PlanExec> Plans;
      size_t NextClientPlan = 0;
      for (core::ClientKind K : Opts.Clients) {
        if (K == core::ClientKind::UUV)
          Plans.push_back({&R.Plan, core::ShadowSemantics()});
        else
          Plans.push_back({&R.ClientPlans[NextClientPlan++].Plan,
                           core::clientShadowSemantics(K)});
      }
      runtime::ExecLimits Limits;
      Limits.Interrupt = &InterruptRaised;
      runtime::ExecutionReport Rep =
          runtime::Interpreter(M, std::move(Plans), runtime::CostModel(),
                               Limits)
              .run();
      for (size_t Ci = 0; Ci != Opts.Clients.size(); ++Ci) {
        core::ClientKind K = Opts.Clients[Ci];
        std::string Label = std::string(core::toolVariantName(V)) + "/" +
                            core::clientName(K);
        reportClientRun(OS, Label, Rep, Rep.PlanResults[Ci],
                        core::clientWarningText(K));
        if (!Rep.PlanResults[Ci].ToolWarnings.empty())
          ExitCode = ExitWarnings;
      }
      if (Rep.Reason != runtime::ExitReason::Finished)
        ExitCode = ExitLimits;
      if (Rep.Reason == runtime::ExitReason::Interrupted) {
        OS.flush();
        return ExitInterrupted;
      }
    } else if (!Opts.Compare) {
      OS << "static checks kept: " << R.Plan.countChecks()
         << ", shadow ops kept: " << R.Plan.countShadowOps() << '\n';
      for (const core::ClientPlanInfo &CP : R.ClientPlans)
        OS << "client " << core::clientName(CP.Kind)
           << " checks kept: " << CP.Plan.countChecks()
           << ", shadow ops kept: " << CP.Plan.countShadowOps() << '\n';
    }
  }
  return ExitCode;
}
