#!/usr/bin/env python3
"""Schema validator and end-to-end driver for usher-serve (usher-serve-v1).

Usage:
  check_serve_json.py FILE.json
      Validate an existing usher-serve-v1 JSON document. The "kind" field
      dispatches: "status" (daemon --op=status output) or "bench" (the
      committed BENCH_serve.json written by bench_serve).

  check_serve_json.py --run-smoke SERVE_BIN PROG DIAG_PROG
      Drive a full service round trip: start a daemon on a fresh socket +
      snapshot dir, issue a cold analyze, a warm analyze (must be
      byte-identical to the cold reply), a diagnose, a --budget-steps=1
      analyze (must come back DEGRADED), validate the status JSON, and
      shut down cleanly. Then restart with --queue-limit=0 and assert an
      analyze is shed (client exit 4) while --op=status still answers.

  check_serve_json.py --run-query SERVE_BIN PROG
      Query-op round trip: issue a reachable and an unreachable
      --op=query against PROG (whose pinned node ids are documented in
      tests/inputs/query/undef_branch.tc), require the verdicts and the
      witness line, reject a malformed query spec, validate the status
      JSON (including the query request counter), and shut down cleanly.

  check_serve_json.py --run-crash SERVE_BIN PROG
      Crash-recovery contract: warm the snapshot store, `kill -9` the
      daemon, restart it on the same directory, and require the recovered
      warm reply to be byte-identical to the cold one. A second leg arms
      the snapshot-torn-write fault via USHER_INJECT_IO_FAULT and requires
      the daemon to keep answering correctly (the torn record is
      discarded and recomputed, never served).

  check_serve_json.py --run-fault SERVE_BIN PROG
      IO fault campaign: for every injectable IO fault site, run a daemon
      with the fault armed and require every analyze reply to carry the
      correct payload (or, for socket-drop-reply, the client to retry its
      way to it) and the daemon to survive to a clean shutdown.

  check_serve_json.py --run-bench BENCH_BIN
      Run `BENCH_BIN --smoke --out=tmp`, then validate the emitted
      BENCH_serve.json (kind "bench").

All driver modes print "check_serve_json: OK" on success; the ctest
entries key off that string.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

IO_FAULT_SITES = [
    "snapshot-read",
    "snapshot-write",
    "snapshot-torn-write",
    "socket-drop-reply",
    "parse-alloc",
]

STATUS_SHAPE = {
    "requests": ["total", "analyze", "diagnose", "query", "status", "ping",
                 "shutdown"],
    "replies": ["ok", "degraded", "error", "served_warm"],
    "snapshot": ["hits", "misses", "corrupt_discarded", "write_failures"],
    "summary": ["hits", "misses", "stale_discarded"],
    "daemon": ["queue_depth", "queue_limit", "shed", "dropped_replies",
               "protocol_errors", "workers"],
}


def fail(msg):
    print(f"check_serve_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_count(owner, obj, field):
    value = obj.get(field)
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        fail(f"{owner}: field {field!r} missing or not a count: {value!r}")
    return value


def check_rate(owner, obj, field):
    value = obj.get(field)
    if not isinstance(value, (int, float)) or isinstance(value, bool) \
            or value < 0:
        fail(f"{owner}: field {field!r} missing or not a rate: {value!r}")
    return float(value)


def check_status(doc, source="status"):
    for block, fields in STATUS_SHAPE.items():
        sub = doc.get(block)
        if not isinstance(sub, dict):
            fail(f"{source}: missing {block!r} block")
        for field in fields:
            check_count(f"{source}.{block}", sub, field)
    if not isinstance(doc["snapshot"].get("in_memory"), bool):
        fail(f"{source}: snapshot.in_memory missing or not a bool")
    if doc["summary"].get("engine") not in ("global", "summary"):
        fail(f"{source}: summary.engine missing or not an engine name")
    reqs = doc["requests"]
    per_op = sum(reqs[f] for f in STATUS_SHAPE["requests"][1:])
    if per_op != reqs["total"]:
        fail(f"{source}: per-op requests sum to {per_op}, "
             f"expected total={reqs['total']}")
    if doc["replies"]["served_warm"] > doc["replies"]["ok"]:
        fail(f"{source}: served_warm exceeds ok replies")


def check_bench(doc, source="bench"):
    if not isinstance(doc.get("smoke"), bool):
        fail(f"{source}: field 'smoke' missing or not a bool")
    check_count(source, doc, "requests")
    for leg in ("cold", "warm"):
        sub = doc.get(leg)
        if not isinstance(sub, dict):
            fail(f"{source}: missing {leg!r} block")
        check_rate(f"{source}.{leg}", sub, "requests_per_sec")
        p50 = check_rate(f"{source}.{leg}", sub, "p50_ms")
        p99 = check_rate(f"{source}.{leg}", sub, "p99_ms")
        if p99 < p50:
            fail(f"{source}.{leg}: p99 {p99} below p50 {p50}")
    if doc.get("warm_identical") is not True:
        fail(f"{source}: warm_identical is not true — the warm replies "
             f"were not byte-identical to the cold ones")


def check_document(doc, source):
    if doc.get("schema") != "usher-serve-v1":
        fail(f"{source}: unexpected schema tag: {doc.get('schema')!r}")
    kind = doc.get("kind")
    if kind == "status":
        check_status(doc, source)
    elif kind == "bench":
        check_bench(doc, source)
    else:
        fail(f"{source}: unknown kind {kind!r}")
    return kind


def check_file(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")
    kind = check_document(doc, path)
    print(f"check_serve_json: OK: {path} (kind={kind})")


# --- Daemon driver helpers --------------------------------------------------


class Daemon:
    """A running usher-serve daemon with its socket and log capture."""

    def __init__(self, serve_bin, tmp, tag, *extra, env=None):
        self.serve_bin = serve_bin
        self.sock = os.path.join(tmp, f"{tag}.sock")
        self.log = open(os.path.join(tmp, f"{tag}.log"), "w+")
        self.proc = subprocess.Popen(
            [serve_bin, f"--socket={self.sock}", *extra],
            stdout=self.log, stderr=self.log, env=env,
        )
        deadline = time.monotonic() + 10.0
        while not os.path.exists(self.sock):
            if self.proc.poll() is not None or time.monotonic() > deadline:
                self.log.seek(0)
                fail(f"daemon did not come up: {self.log.read().strip()!r}")
            time.sleep(0.02)

    def client(self, *args, timeout=30):
        proc = subprocess.run(
            [self.serve_bin, "--client", f"--socket={self.sock}", *args],
            capture_output=True, text=True, timeout=timeout,
        )
        return proc.returncode, proc.stdout, proc.stderr

    def shutdown(self, expect_clean=True):
        code, _, err = self.client("--op=shutdown")
        if expect_clean and code != 0:
            fail(f"shutdown client exited {code}: {err.strip()!r}")
        daemon_code = self.proc.wait(timeout=10)
        self.log.close()
        if expect_clean and daemon_code != 0:
            fail(f"daemon exited {daemon_code} after shutdown")

    def kill9(self):
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=10)
        self.log.close()
        # A SIGKILL'd daemon cannot unlink its socket; clear the stale
        # path so the restart's bind is exercised the way deployments
        # would see it (the daemon also handles this itself).
        if os.path.exists(self.sock):
            os.unlink(self.sock)


def reply_body(stdout):
    """Drop the client's one-line 'OK id=...' header, keep the payload."""
    head, sep, body = stdout.partition("\n")
    return head, body


def run_smoke(serve_bin, prog, diag_prog):
    with tempfile.TemporaryDirectory() as tmp:
        snap = os.path.join(tmp, "snap")
        d = Daemon(serve_bin, tmp, "smoke", f"--snapshot-dir={snap}")

        code, out, err = d.client("--op=analyze", prog)
        if code != 0:
            fail(f"cold analyze exited {code}: {err.strip()!r}")
        head, cold = reply_body(out)
        if not head.startswith("OK "):
            fail(f"cold analyze status line: {head!r}")
        if "module: variant=" not in cold:
            fail(f"cold analyze payload missing module summary: {cold!r}")

        code, out, err = d.client("--op=analyze", prog)
        if code != 0:
            fail(f"warm analyze exited {code}: {err.strip()!r}")
        _, warm = reply_body(out)
        if warm != cold:
            fail("warm analyze payload differs from cold:\n"
                 f"cold: {cold!r}\nwarm: {warm!r}")

        code, out, err = d.client("--op=diagnose", diag_prog)
        if code != 0:
            fail(f"diagnose exited {code}: {err.strip()!r}")
        _, body = reply_body(out)
        if "critical-uses=" not in body:
            fail(f"diagnose payload missing verdict summary: {body!r}")

        # --budget-steps=1 exhausts the first phase budget immediately:
        # a deterministic DEGRADED reply, unlike a wall-clock deadline.
        code, out, err = d.client("--op=analyze", "--budget-steps=1", prog)
        if code != 0:
            fail(f"budgeted analyze exited {code}: {err.strip()!r}")
        head, _ = reply_body(out)
        if not head.startswith("DEGRADED "):
            fail(f"budget-steps=1 did not degrade: {head!r}")

        code, out, err = d.client("--op=status")
        if code != 0:
            fail(f"status exited {code}: {err.strip()!r}")
        _, body = reply_body(out)
        try:
            doc = json.loads(body)
        except json.JSONDecodeError as e:
            fail(f"status payload is not JSON: {e}\n{body!r}")
        check_document(doc, "status reply")
        if doc["replies"]["served_warm"] < 1:
            fail("status reports no warm replies after a warm analyze")
        if doc["requests"]["analyze"] != 3 or doc["requests"]["diagnose"] != 1:
            fail(f"status per-op counters off: {doc['requests']!r}")
        d.shutdown()

        # Overload: queue-limit=0 sheds every analysis request with
        # RETRY_AFTER until the client gives up (exit 4), while control
        # ops bypass admission and still answer.
        d = Daemon(serve_bin, tmp, "shed", "--queue-limit=0")
        code, out, err = d.client("--op=analyze", "--max-retries=2", prog)
        if code != 4:
            fail(f"expected shed exit 4 under --queue-limit=0, got {code}: "
                 f"{out!r} {err.strip()!r}")
        code, out, err = d.client("--op=status")
        if code != 0:
            fail(f"status during overload exited {code}: {err.strip()!r}")
        _, body = reply_body(out)
        doc = json.loads(body)
        check_document(doc, "overload status reply")
        if doc["daemon"]["shed"] < 3:
            fail(f"expected >=3 shed requests, status says "
                 f"{doc['daemon']['shed']}")
        d.shutdown()
    print("check_serve_json: OK (smoke: cold==warm, degraded, status, shed)")


def run_query(serve_bin, prog):
    with tempfile.TemporaryDirectory() as tmp:
        d = Daemon(serve_bin, tmp, "query")

        # Reachable pair — the pinned ids are documented in the input's
        # header comment. The reply must carry the verdict, the engine
        # the speed ladder promises, and a witness starting at the src.
        code, out, err = d.client("--op=query", "--query=1,3", prog)
        if code != 0:
            fail(f"reachable query exited {code}: {err.strip()!r}")
        head, body = reply_body(out)
        if not head.startswith("OK "):
            fail(f"reachable query status line: {head!r}")
        if "query 1 -> 3: reachable" not in body:
            fail(f"reachable query verdict missing: {body!r}")
        if "engine: unify" not in body:
            fail(f"query did not answer on the unification engine: {body!r}")
        if "witness: 1 -> " not in body:
            fail(f"reachable query reply has no witness: {body!r}")

        # Unreachable pair: a verdict, no witness line.
        code, out, err = d.client("--op=query", "--query=1,0", prog)
        if code != 0:
            fail(f"unreachable query exited {code}: {err.strip()!r}")
        _, body = reply_body(out)
        if "query 1 -> 0: unreachable" not in body:
            fail(f"unreachable query verdict missing: {body!r}")
        if "witness:" in body:
            fail(f"unreachable query reply carries a witness: {body!r}")

        # An out-of-range node id is a structured Error reply (exit 3),
        # not a daemon casualty.
        code, out, err = d.client("--op=query", "--query=1,4294967294", prog)
        if code != 3:
            fail(f"out-of-range query: expected Error reply (exit 3), "
                 f"got {code}: {out!r}")
        if "out of range" not in out:
            fail(f"out-of-range query reply missing diagnostic: {out!r}")

        # A missing --query spec is rejected client-side before any I/O.
        code, out, err = d.client("--op=query", prog)
        if code == 0:
            fail("client accepted --op=query without --query=<src>,<sink>")

        # The status JSON must validate and count all three server-side
        # queries (the spec-less one never reached the daemon).
        code, out, err = d.client("--op=status")
        if code != 0:
            fail(f"status exited {code}: {err.strip()!r}")
        doc = json.loads(reply_body(out)[1])
        check_document(doc, "query status reply")
        if doc["requests"]["query"] != 3:
            fail(f"status query counter off: {doc['requests']!r}")
        d.shutdown()
    print("check_serve_json: OK (query: reachable witness, unreachable, "
          "out-of-range error, status counter)")


def run_crash(serve_bin, prog):
    with tempfile.TemporaryDirectory() as tmp:
        snap = os.path.join(tmp, "snap")

        # Leg 1: warm the store, kill -9, recover byte-identically.
        d = Daemon(serve_bin, tmp, "pre", f"--snapshot-dir={snap}")
        code, out, err = d.client("--op=analyze", prog)
        if code != 0:
            fail(f"pre-crash analyze exited {code}: {err.strip()!r}")
        _, cold = reply_body(out)
        d.kill9()

        d = Daemon(serve_bin, tmp, "post", f"--snapshot-dir={snap}")
        code, out, err = d.client("--op=analyze", prog)
        if code != 0:
            fail(f"post-crash analyze exited {code}: {err.strip()!r}")
        _, warm = reply_body(out)
        if warm != cold:
            fail("post-crash warm reply differs from pre-crash cold reply")
        code, out, _ = d.client("--op=status")
        doc = json.loads(reply_body(out)[1])
        if doc["snapshot"]["hits"] < 1:
            fail("post-crash status reports no snapshot hits — the reply "
                 "was recomputed, not recovered")
        d.shutdown()

        # Leg 2: a torn snapshot write must never corrupt an answer. Arm
        # the torn-write fault for the first write, analyze (the reply is
        # computed in-process, so it is still correct), restart without
        # the fault, and require the recomputed reply to match.
        torn = os.path.join(tmp, "torn-snap")
        env = dict(os.environ, USHER_INJECT_IO_FAULT="snapshot-torn-write@1")
        d = Daemon(serve_bin, tmp, "torn", f"--snapshot-dir={torn}", env=env)
        code, out, err = d.client("--op=analyze", prog)
        if code != 0:
            fail(f"torn-write analyze exited {code}: {err.strip()!r}")
        _, first = reply_body(out)
        if first != cold:
            fail("analyze under torn-write fault returned a wrong payload")
        d.shutdown()

        d = Daemon(serve_bin, tmp, "healed", f"--snapshot-dir={torn}")
        code, out, err = d.client("--op=analyze", prog)
        if code != 0:
            fail(f"post-torn analyze exited {code}: {err.strip()!r}")
        _, healed = reply_body(out)
        if healed != cold:
            fail("reply after torn-write recovery differs from cold")
        code, out, _ = d.client("--op=status")
        doc = json.loads(reply_body(out)[1])
        d.shutdown()
        discarded = doc["snapshot"]["corrupt_discarded"]
        recovered = doc["snapshot"]["hits"]
        if discarded + recovered == 0:
            fail("torn-snapshot restart neither discarded a corrupt record "
                 "nor recovered an intact one")
    print(f"check_serve_json: OK (crash: kill -9 recovery byte-identical, "
          f"torn-write discarded={discarded})")


def run_fault(serve_bin, prog):
    with tempfile.TemporaryDirectory() as tmp:
        base = Daemon(serve_bin, tmp, "base",
                      f"--snapshot-dir={os.path.join(tmp, 'base-snap')}")
        code, out, err = base.client("--op=analyze", prog)
        if code != 0:
            fail(f"baseline analyze exited {code}: {err.strip()!r}")
        _, expected = reply_body(out)
        base.shutdown()

        for site in IO_FAULT_SITES:
            # :once — the fault fires exactly at the first traversal, then
            # clears. A persistent socket-drop-reply would drop every
            # reply forever, which tests nothing beyond the client's
            # retry cap; firing once probes the recovery path instead.
            env = dict(os.environ,
                       USHER_INJECT_IO_FAULT=f"{site}@1:once")
            snap = os.path.join(tmp, f"snap-{site}")
            d = Daemon(serve_bin, tmp, f"fault-{site}",
                       f"--snapshot-dir={snap}", env=env)
            for attempt in ("first", "second"):
                code, out, err = d.client("--op=analyze", prog)
                if site == "parse-alloc" and attempt == "first":
                    # The armed allocation failure surfaces as a
                    # structured Error reply; the daemon must survive it.
                    if code != 3:
                        fail(f"{site}: expected Error reply (exit 3) on the "
                             f"faulted request, got {code}: {out!r}")
                    continue
                if code != 0:
                    fail(f"{site}: {attempt} analyze exited {code}: "
                         f"{out!r} {err.strip()!r}")
                _, body = reply_body(out)
                if body != expected:
                    fail(f"{site}: {attempt} analyze payload diverged from "
                         f"the fault-free baseline")
            code, out, _ = d.client("--op=status")
            if code != 0:
                fail(f"{site}: daemon stopped answering status after fault")
            check_document(json.loads(reply_body(out)[1]),
                           f"{site} status reply")
            d.shutdown()
    print(f"check_serve_json: OK (fault campaign: "
          f"{len(IO_FAULT_SITES)} sites survived)")


def run_bench(bench_bin):
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "BENCH_serve.json")
        proc = subprocess.run([bench_bin, "--smoke", f"--out={out}"],
                              stdout=subprocess.DEVNULL)
        if proc.returncode != 0:
            fail(f"{bench_bin} exited with {proc.returncode}")
        check_file(out)


def main(argv):
    if len(argv) == 5 and argv[1] == "--run-smoke":
        run_smoke(argv[2], argv[3], argv[4])
    elif len(argv) == 4 and argv[1] == "--run-query":
        run_query(argv[2], argv[3])
    elif len(argv) == 4 and argv[1] == "--run-crash":
        run_crash(argv[2], argv[3])
    elif len(argv) == 4 and argv[1] == "--run-fault":
        run_fault(argv[2], argv[3])
    elif len(argv) == 3 and argv[1] == "--run-bench":
        run_bench(argv[2])
    elif len(argv) == 2 and not argv[1].startswith("-"):
        check_file(argv[1])
    else:
        print(__doc__, file=sys.stderr)
        sys.exit(2)


if __name__ == "__main__":
    main(sys.argv)
