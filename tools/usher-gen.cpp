//===- tools/usher-gen.cpp - Workload synthesis CLI -----------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits deterministic TinyC source from a shape spec, so the same
/// synthesized programs feed usher-cli, usher-serve, usher-fuzz and the
/// scaling benchmarks:
///
///   usher-gen --nodes=100000 --seed=7 --out=big.tc
///   usher-gen --link-suite --out=suite.tc
///   usher-gen --nodes=10000 --measure
///
/// The output is a pure function of the flags: same spec, same bytes,
/// for every --jobs value.
///
/// Exit codes: 0 = ok, 1 = internal failure (synthesized program did not
/// parse/verify, or the suite failed to link), 2 = usage error.
///
//===----------------------------------------------------------------------===//

#include "ir/IR.h"
#include "parser/Parser.h"
#include "support/RawStream.h"
#include "workload/Spec2000.h"
#include "workload/Synthesizer.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace usher;

namespace {

struct CliOptions {
  workload::ShapeSpec Spec;
  std::string OutPath; ///< Empty or "-" = stdout.
  bool LinkSuite = false;
  bool Measure = false;
};

void printUsage(raw_ostream &OS) {
  OS << "usage: usher-gen [options]\n"
     << "  --nodes=N        target VFG node count (default 10000)\n"
     << "  --depth=N        call-graph depth below main (default 6)\n"
     << "  --fanout=N       distinct callees per non-leaf (default 3)\n"
     << "  --scc=N          mutual-recursion rings (default 2)\n"
     << "  --scc-size=N     functions per ring (default 3)\n"
     << "  --ptr-density=P  %% of statements doing pointer work (default 35)\n"
     << "  --field-depth=N  max linked field-chain descent (default 3)\n"
     << "  --uninit=P       %% of allocations left uninitialized (default 40)\n"
     << "  --define-all     initialize everything: warning-free program\n"
     << "  --seed=N         generation seed (default 1)\n"
     << "  --jobs=N         generation threads (0 = all cores; output is\n"
     << "                   byte-identical for every value)\n"
     << "  --out=PATH       write the program here (- or absent = stdout)\n"
     << "  --link-suite     emit the 15 SPEC-like suite programs linked\n"
     << "                   into one module instead of synthesizing\n"
     << "  --measure        parse the emitted program and print its\n"
     << "                   measured shape instead of the source\n";
}

bool parseUInt(const std::string &Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  char *End = nullptr;
  Out = std::strtoull(Text.c_str(), &End, 10);
  return End && *End == '\0';
}

bool parseArgs(int Argc, char **Argv, CliOptions &Cli) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    uint64_t N = 0;
    if (Arg.rfind("--nodes=", 0) == 0) {
      if (!parseUInt(Arg.substr(8), N) || N == 0)
        return false;
      Cli.Spec.TargetNodes = static_cast<unsigned>(N);
    } else if (Arg.rfind("--depth=", 0) == 0) {
      if (!parseUInt(Arg.substr(8), N) || N == 0)
        return false;
      Cli.Spec.CallDepth = static_cast<unsigned>(N);
    } else if (Arg.rfind("--fanout=", 0) == 0) {
      if (!parseUInt(Arg.substr(9), N) || N == 0)
        return false;
      Cli.Spec.Fanout = static_cast<unsigned>(N);
    } else if (Arg.rfind("--scc=", 0) == 0) {
      if (!parseUInt(Arg.substr(6), N))
        return false;
      Cli.Spec.RecursionRings = static_cast<unsigned>(N);
    } else if (Arg.rfind("--scc-size=", 0) == 0) {
      if (!parseUInt(Arg.substr(11), N) || N == 0)
        return false;
      Cli.Spec.RingSize = static_cast<unsigned>(N);
    } else if (Arg.rfind("--ptr-density=", 0) == 0) {
      if (!parseUInt(Arg.substr(14), N) || N > 100)
        return false;
      Cli.Spec.PtrDensityPercent = static_cast<unsigned>(N);
    } else if (Arg.rfind("--field-depth=", 0) == 0) {
      if (!parseUInt(Arg.substr(14), N))
        return false;
      Cli.Spec.FieldChainDepth = static_cast<unsigned>(N);
    } else if (Arg.rfind("--uninit=", 0) == 0) {
      if (!parseUInt(Arg.substr(9), N) || N > 100)
        return false;
      Cli.Spec.UninitAllocPercent = static_cast<unsigned>(N);
    } else if (Arg == "--define-all") {
      Cli.Spec.DefineAll = true;
    } else if (Arg.rfind("--seed=", 0) == 0) {
      if (!parseUInt(Arg.substr(7), N))
        return false;
      Cli.Spec.Seed = N;
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      if (!parseUInt(Arg.substr(7), N) || N > 64)
        return false;
      Cli.Spec.Jobs = static_cast<unsigned>(N);
    } else if (Arg.rfind("--out=", 0) == 0) {
      Cli.OutPath = Arg.substr(6);
    } else if (Arg == "--link-suite") {
      Cli.LinkSuite = true;
    } else if (Arg == "--measure") {
      Cli.Measure = true;
    } else {
      return false;
    }
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Cli;
  if (!parseArgs(Argc, Argv, Cli)) {
    printUsage(errs());
    return 2;
  }

  std::string Source;
  if (Cli.LinkSuite) {
    std::vector<workload::LinkUnit> Units;
    for (const workload::BenchmarkProgram &P : workload::spec2000Suite())
      Units.push_back({P.Name, P.Source});
    std::string Err;
    workload::LinkedProgram LP = workload::linkPrograms(Units, &Err);
    if (LP.Source.empty()) {
      errs() << "error: " << Err << "\n";
      return 1;
    }
    Source = std::move(LP.Source);
  } else {
    Source = workload::synthesizeProgram(Cli.Spec);
  }

  if (Cli.Measure) {
    parser::ParseResult PR = parser::parseModule(Source);
    if (!PR.succeeded()) {
      errs() << "error: emitted program failed to parse"
             << (PR.Errors.empty() ? "" : ": " + PR.Errors.front()) << "\n";
      return 1;
    }
    workload::ShapeMetrics Met = workload::measureShape(*PR.M);
    raw_ostream &OS = outs();
    OS << "functions:      " << Met.NumFunctions << "\n";
    OS << "instructions:   " << Met.NumInstructions << "\n";
    OS << "call depth:     " << Met.CallDepth << "\n";
    OS.printf("avg fanout:     %.2f\n", Met.AvgFanout);
    OS << "nontrivial sccs: " << Met.NontrivialSccs << "\n";
    OS.printf("uninit allocs:  %.2f\n", Met.UninitAllocFraction);
    return 0;
  }

  if (Cli.OutPath.empty() || Cli.OutPath == "-") {
    outs() << Source;
    outs().flush();
    return 0;
  }
  std::FILE *FP = std::fopen(Cli.OutPath.c_str(), "w");
  if (!FP) {
    errs() << "error: cannot open " << Cli.OutPath << " for writing\n";
    return 2;
  }
  raw_fd_ostream OS(FP);
  OS << Source;
  OS.flush();
  std::fclose(FP);
  return 0;
}
