//===- examples/quickstart.cpp - Five-minute tour of the library -----------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shortest useful end-to-end trip: parse a TinyC program containing a
/// real uninitialized-read bug, instrument it two ways — full MSan-style
/// instrumentation and Usher's guided instrumentation — execute both, and
/// show that Usher reports the same bug at a fraction of the shadow work.
///
/// Build and run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "core/Usher.h"
#include "parser/Parser.h"
#include "runtime/Interpreter.h"
#include "support/RawStream.h"

using namespace usher;

// A C-like program with one bug: `limit` is only assigned when the
// configuration flag is set, but the loop reads it unconditionally.
static const char *Program = R"(
  global config[1] init;       // zero-initialized: flag is off

  func pick_limit(flag) {
    if flag goto configured;
    goto done;                  // BUG: limit stays undefined here
  configured:
    limit = 32;
  done:
    ret limit;
  }

  func main() {
    pc = gep config, 0;
    flag = *pc;
    limit = pick_limit(flag);
    i = 0;
    total = 0;
  loop:
    c = i < limit;              // the undefined value decides a branch
    if c goto body;
    goto finish;
  body:
    total = total + i;
    i = i + 1;
    goto loop;
  finish:
    ret total;
  }
)";

int main() {
  raw_ostream &OS = outs();
  auto M = parser::parseModuleOrAbort(Program);

  // 1. Full instrumentation: the MSan baseline.
  core::UsherOptions FullOpts;
  FullOpts.Variant = core::ToolVariant::MSanFull;
  core::UsherResult Full = core::runUsher(*M, FullOpts);

  // 2. Guided instrumentation: the paper's contribution.
  core::UsherOptions GuidedOpts;
  GuidedOpts.Variant = core::ToolVariant::UsherFull;
  core::UsherResult Guided = core::runUsher(*M, GuidedOpts);

  OS << "static shadow propagations: MSan " << Full.Stats.StaticPropagations
     << ", Usher " << Guided.Stats.StaticPropagations << '\n';
  OS << "static runtime checks:      MSan " << Full.Stats.StaticChecks
     << ", Usher " << Guided.Stats.StaticChecks << '\n';

  // 3. Execute both and compare reports and modeled overhead.
  runtime::ExecutionReport FullRep =
      runtime::Interpreter(*M, &Full.Plan).run();
  runtime::ExecutionReport GuidedRep =
      runtime::Interpreter(*M, &Guided.Plan).run();

  auto Describe = [&](const char *Tool,
                      const runtime::ExecutionReport &Rep) {
    OS << Tool << ": slowdown " << static_cast<int>(Rep.slowdownPercent())
       << "%, warnings:\n";
    for (const runtime::Warning &W : Rep.ToolWarnings) {
      OS << "  use of undefined value at \"";
      W.At->print(OS);
      OS << "\" in " << W.At->getParent()->getParent()->getName() << " ("
         << W.Occurrences << " occurrence(s))\n";
    }
  };
  Describe("MSan ", FullRep);
  Describe("Usher", GuidedRep);

  bool SameBug = !GuidedRep.ToolWarnings.empty() &&
                 !FullRep.ToolWarnings.empty();
  OS << (SameBug ? "Usher found the same bug with "
                 : "MISMATCH in bug reports; ")
     << FullRep.DynShadowOps + FullRep.DynChecks << " vs "
     << GuidedRep.DynShadowOps + GuidedRep.DynChecks
     << " executed shadow operations.\n";
  return SameBug ? 0 : 1;
}
