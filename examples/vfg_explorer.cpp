//===- examples/vfg_explorer.cpp - Inspecting the value-flow graph ---------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reconstructs the paper's Figure 6 scenario — a heap object written in a
/// loop, where a *semi-strong update* lets the analysis bypass the
/// allocation's undefinedness — and prints:
///  - the update flavor chosen for every store,
///  - the definedness (Gamma) of each critical use,
///  - the whole VFG in Graphviz dot syntax (pipe into `dot -Tsvg`).
///
//===----------------------------------------------------------------------===//

#include "analysis/PointerAnalysis.h"
#include "core/Usher.h"
#include "parser/Parser.h"
#include "support/RawStream.h"

using namespace usher;

// Figure 6 of the paper, in TinyC: an allocation wrapper-free loop where
// `p` always points at the most recent allocation, so the store *p := t
// can bypass the fresh object's undefinedness (semi-strong update), and
// the load afterwards is provably defined.
static const char *Program = R"(
  func main() {
    i = 0;
    sum = 0;
  loop:
    c = i < 10;
    if c goto body;
    goto done;
  body:
    q = alloc heap 1 uninit;    // fresh, undefined object each trip
    p = q;                      // p uniquely points to the fresh object
    t = i * 2;
    *p = t;                     // semi-strong: bypasses the alloc's F
    v = *q;                     // provably defined despite alloc_F
    sum = sum + v;
    i = i + 1;
    goto loop;
  done:
    ret sum;
  }
)";

int main(int argc, char **argv) {
  raw_ostream &OS = outs();
  auto M = parser::parseModuleOrAbort(Program);

  core::UsherResult R = core::runUsher(*M, core::UsherOptions());

  OS << "--- store update flavors (Section 3.2) ---\n";
  for (const auto &F : M->functions()) {
    for (const auto &BB : F->blocks()) {
      for (const auto &I : BB->instructions()) {
        const auto *St = dyn_cast<ir::StoreInst>(I.get());
        if (!St)
          continue;
        OS << "  \"";
        St->print(OS);
        OS << "\" -> ";
        bool First = true;
        for (uint32_t Loc : R.PA->pointsTo(St->getPtr())) {
          if (!First)
            OS << ", ";
          switch (R.G->storeUpdateKind(St, Loc)) {
          case vfg::UpdateKind::Strong:
            OS << "strong";
            break;
          case vfg::UpdateKind::SemiStrong:
            OS << "semi-strong";
            break;
          case vfg::UpdateKind::Weak:
            OS << "weak";
            break;
          }
          OS << " update of " << R.PA->location(Loc).Obj->getName()
             << " field " << R.PA->location(Loc).Field;
          First = false;
        }
        OS << '\n';
      }
    }
  }

  OS << "--- definedness of critical uses (Section 3.3) ---\n";
  unsigned Checks = 0;
  for (const vfg::VFG::CriticalUse &Use : R.G->criticalUses()) {
    OS << "  " << Use.Var->getName() << " at \"";
    Use.I->print(OS);
    OS << "\": "
       << (R.Gamma->isDefined(Use.Node) ? "defined (no check)"
                                        : "may be undefined (check)")
       << '\n';
    Checks += !R.Gamma->isDefined(Use.Node);
  }
  OS << Checks << " runtime check(s) remain out of "
     << R.G->criticalUses().size() << " critical uses.\n";

  if (argc > 1 && std::string_view(argv[1]) == "--dot") {
    OS << "--- VFG (Graphviz) ---\n";
    R.G->dumpDot(OS);
  } else {
    OS << "(run with --dot to print the value-flow graph)\n";
  }
  return 0;
}
