//===- examples/bug_hunt.cpp - Finding the 197.parser bug ------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's one true positive: all tools detect a use of an undefined
/// value in 197.parser's ppmatch(). This example loads the parser-like
/// benchmark from the suite, runs every tool variant, and shows each one
/// reporting the same defect while executing very different amounts of
/// shadow work.
///
//===----------------------------------------------------------------------===//

#include "core/Usher.h"
#include "runtime/Interpreter.h"
#include "support/RawStream.h"
#include "workload/Spec2000.h"

using namespace usher;

int main() {
  raw_ostream &OS = outs();

  const workload::BenchmarkProgram *Parser = nullptr;
  for (const auto &B : workload::spec2000Suite())
    if (B.Name == "197.parser")
      Parser = &B;
  if (!Parser) {
    errs() << "197.parser not found in the suite\n";
    return 1;
  }
  OS << "Hunting the known bug in " << Parser->Name << " ("
     << Parser->Description << ")\n\n";

  const core::ToolVariant Variants[] = {
      core::ToolVariant::MSanFull, core::ToolVariant::UsherTL,
      core::ToolVariant::UsherTLAT, core::ToolVariant::UsherOptI,
      core::ToolVariant::UsherFull};

  bool AllFound = true;
  for (core::ToolVariant V : Variants) {
    auto M = workload::loadBenchmark(*Parser);
    core::UsherOptions Opts;
    Opts.Variant = V;
    core::UsherResult R = core::runUsher(*M, Opts);
    runtime::ExecutionReport Rep = runtime::Interpreter(*M, &R.Plan).run();

    OS << "[";
    OS.leftJustify(core::toolVariantName(V), 12);
    OS << "] slowdown " << static_cast<int>(Rep.slowdownPercent())
       << "%\tshadow ops " << Rep.DynShadowOps << "\tchecks "
       << Rep.DynChecks << '\n';
    for (const runtime::Warning &W : Rep.ToolWarnings) {
      OS << "    use of undefined value in "
         << W.At->getParent()->getParent()->getName() << " at \"";
      W.At->print(OS);
      OS << "\" (" << W.Occurrences << " occurrences)\n";
    }
    AllFound &= !Rep.ToolWarnings.empty();
  }

  OS << '\n'
     << (AllFound ? "Every variant reported the ppmatch defect, as in the "
                    "paper (Section 4.5)."
                  : "ERROR: some variant missed the defect!")
     << '\n';
  return AllFound ? 0 : 1;
}
