//===- examples/build_with_api.cpp - Constructing IR programmatically ------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds a TinyC module with the IRBuilder API instead of the parser —
/// the route an embedding compiler front-end would take — then runs the
/// analysis pipeline, prints the textual form of the module, and executes
/// it. The program built here is the paper's running TinyC example from
/// Figure 5, extended with a main that exercises it.
///
//===----------------------------------------------------------------------===//

#include "core/Usher.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "runtime/Interpreter.h"
#include "support/RawStream.h"

using namespace usher;
using namespace usher::ir;

int main() {
  raw_ostream &OS = outs();
  Module M;
  IRBuilder B(M);

  // def foo(q) { x := *q; if x goto l; t := 10; x := x*t; *q := x;
  //              l: ret x; }   (Figure 5 of the paper)
  Function *Foo = M.createFunction("foo");
  Variable *Q = Foo->createVariable("q", /*IsParam=*/true);
  Variable *X = Foo->createVariable("x");
  Variable *T = Foo->createVariable("t");
  BasicBlock *Entry = Foo->createBlock("entry");
  BasicBlock *Then = Foo->createBlock("l");
  BasicBlock *Fall = Foo->createBlock("fall");
  B.setInsertPoint(Entry);
  B.createLoad(X, Operand::var(Q));
  B.createCondBr(Operand::var(X), Then, Fall);
  B.setInsertPoint(Fall);
  B.createCopy(T, Operand::constant(10));
  B.createBinOp(X, BinOpcode::Mul, Operand::var(X), Operand::var(T));
  B.createStore(Operand::var(Q), Operand::var(X));
  B.createGoto(Then);
  B.setInsertPoint(Then);
  B.createRet(Operand::var(X));

  // main: a := alloc_F b; *a := 4; r := foo(a); ret r.
  Function *Main = M.createFunction("main");
  Variable *A = Main->createVariable("a");
  Variable *R = Main->createVariable("r");
  BasicBlock *MainEntry = Main->createBlock("entry");
  B.setInsertPoint(MainEntry);
  B.createAlloc(A, Region::Heap, /*NumFields=*/1, /*Initialized=*/false,
                /*IsArray=*/false, "b");
  B.createStore(Operand::var(A), Operand::constant(4));
  B.createCall(R, Foo, {Operand::var(A)});
  B.createRet(Operand::var(R));

  M.renumber();
  verifyModuleOrAbort(M);

  OS << "--- module built through the API ---\n";
  M.print(OS);

  core::UsherResult Result = core::runUsher(M, core::UsherOptions());
  OS << "--- analysis ---\n";
  OS << "VFG: " << Result.Stats.NumVFGNodes << " nodes, "
     << Result.Stats.NumVFGEdges << " edges; checks kept: "
     << Result.Stats.StaticChecks << "; shadow propagations kept: "
     << Result.Stats.StaticPropagations << '\n';

  runtime::ExecutionReport Rep =
      runtime::Interpreter(M, &Result.Plan).run();
  OS << "--- execution ---\n";
  OS << "main returned " << Rep.MainResult << " with "
     << Rep.ToolWarnings.size() << " warning(s), modeled slowdown "
     << static_cast<int>(Rep.slowdownPercent()) << "%\n";
  // *a := 4 defines the cell before foo reads it: a quiet, cheap run is
  // the expected outcome.
  return Rep.ToolWarnings.empty() ? 0 : 1;
}
